"""im2col / col2im kernel tests."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.tensor.im2col import col2im, conv_output_size, im2col
from repro.tensor.workspace import Workspace


def reference_im2col(x, kernel, stride, padding):
    """Naive patch extraction for cross-checking."""
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    rows = []
    for ni in range(n):
        for yi in range(oh):
            for xi in range(ow):
                patch = xp[ni, :, yi * sh : yi * sh + kh, xi * sw : xi * sw + kw]
                rows.append(patch.reshape(-1))
    return np.stack(rows), (oh, ow)


class TestConvOutputSize:
    def test_basic(self):
        assert conv_output_size(10, 3, 1, 0) == 8
        assert conv_output_size(10, 3, 1, 1) == 10
        assert conv_output_size(10, 3, 2, 0) == 4

    def test_nonpositive_raises(self):
        with pytest.raises(ShapeError):
            conv_output_size(2, 5, 1, 0)


class TestIm2Col:
    @pytest.mark.parametrize("stride", [(1, 1), (2, 1), (2, 3)])
    @pytest.mark.parametrize("padding", [(0, 0), (1, 1), (2, 0)])
    def test_matches_reference(self, rng, stride, padding):
        x = rng.standard_normal((2, 3, 7, 8))
        cols, dims = im2col(x, (3, 3), stride, padding)
        ref, ref_dims = reference_im2col(x, (3, 3), stride, padding)
        assert dims == ref_dims
        assert np.allclose(cols, ref)

    def test_rectangular_kernel(self, rng):
        x = rng.standard_normal((1, 2, 6, 6))
        cols, dims = im2col(x, (1, 5))
        ref, ref_dims = reference_im2col(x, (1, 5), (1, 1), (0, 0))
        assert dims == ref_dims
        assert np.allclose(cols, ref)

    def test_wrong_rank_raises(self, rng):
        with pytest.raises(ShapeError):
            im2col(rng.standard_normal((3, 7, 8)), (3, 3))


class TestCol2Im:
    def test_adjoint_identity(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining property."""
        shape = (2, 3, 6, 7)
        x = rng.standard_normal(shape)
        cols, _ = im2col(x, (3, 3), (2, 1), (1, 0))
        y = rng.standard_normal(cols.shape)
        back = col2im(y, shape, (3, 3), (2, 1), (1, 0))
        assert np.isclose(np.sum(cols * y), np.sum(x * back))

    def test_counts_overlaps(self):
        """col2im of ones counts how many patches cover each pixel."""
        shape = (1, 1, 4, 4)
        cols, _ = im2col(np.ones(shape), (3, 3))
        counts = col2im(np.ones_like(cols), shape, (3, 3))
        # Centre pixels are covered by 4 3x3 patches on a 4x4 grid.
        assert counts[0, 0, 1, 1] == 4.0
        assert counts[0, 0, 0, 0] == 1.0

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            col2im(rng.standard_normal((5, 9)), (1, 1, 4, 4), (3, 3))

    def test_roundtrip_stride_equal_kernel(self, rng):
        """Non-overlapping patches: col2im(im2col(x)) == x."""
        x = rng.standard_normal((1, 2, 6, 6))
        cols, _ = im2col(x, (3, 3), (3, 3))
        assert np.allclose(col2im(cols, x.shape, (3, 3), (3, 3)), x)


class TestEdgeCases:
    """Configurations the conv tests never exercise: stride > 1 with
    padding, asymmetric kernels (kh != kw), and batched inputs."""

    def test_strided_and_padded(self, rng):
        x = rng.standard_normal((1, 2, 9, 9))
        cols, dims = im2col(x, (3, 3), (2, 2), (1, 1))
        ref, ref_dims = reference_im2col(x, (3, 3), (2, 2), (1, 1))
        assert dims == ref_dims == (5, 5)
        assert np.allclose(cols, ref)

    def test_strided_padded_adjoint(self, rng):
        """The adjoint identity must hold with stride AND padding active
        (the scatter loop's bounds interact with both)."""
        shape = (2, 2, 9, 8)
        x = rng.standard_normal(shape)
        cols, _ = im2col(x, (3, 3), (2, 2), (1, 1))
        y = rng.standard_normal(cols.shape)
        back = col2im(y, shape, (3, 3), (2, 2), (1, 1))
        assert np.isclose(np.sum(cols * y), np.sum(x * back))

    @pytest.mark.parametrize("kernel", [(1, 5), (5, 1), (2, 4)])
    def test_asymmetric_kernels(self, rng, kernel):
        x = rng.standard_normal((1, 3, 8, 8))
        stride, padding = (1, 1), (0, 0)
        cols, dims = im2col(x, kernel, stride, padding)
        ref, ref_dims = reference_im2col(x, kernel, stride, padding)
        assert dims == ref_dims
        assert np.allclose(cols, ref)

    def test_asymmetric_kernel_adjoint(self, rng):
        shape = (1, 2, 7, 9)
        x = rng.standard_normal(shape)
        cols, _ = im2col(x, (2, 4), (1, 2), (1, 0))
        y = rng.standard_normal(cols.shape)
        back = col2im(y, shape, (2, 4), (1, 2), (1, 0))
        assert np.isclose(np.sum(cols * y), np.sum(x * back))

    def test_batched_matches_reference(self, rng):
        x = rng.standard_normal((4, 3, 6, 6))
        cols, dims = im2col(x, (3, 3), (1, 1), (1, 1))
        ref, ref_dims = reference_im2col(x, (3, 3), (1, 1), (1, 1))
        assert dims == ref_dims
        assert np.allclose(cols, ref)

    def test_batched_rows_are_per_sample(self, rng):
        """Batch rows must be grouped per sample: the first N*OH*OW/N
        rows of a batch must equal the single-sample result."""
        x = rng.standard_normal((3, 2, 5, 5))
        cols, (oh, ow) = im2col(x, (3, 3))
        single, _ = im2col(x[1:2], (3, 3))
        rows = oh * ow
        assert np.array_equal(cols[rows : 2 * rows], single)


class TestWorkspacePath:
    """The arena-backed path must be bit-identical to the naive path."""

    @pytest.mark.parametrize("stride", [(1, 1), (2, 2)])
    @pytest.mark.parametrize("padding", [(0, 0), (1, 1), (2, 0)])
    def test_im2col_identical(self, rng, stride, padding):
        ws = Workspace()
        x = rng.standard_normal((2, 3, 9, 9))
        naive, dims = im2col(x, (3, 3), stride, padding)
        warm, warm_dims = im2col(x, (3, 3), stride, padding, workspace=ws)
        assert dims == warm_dims
        assert np.array_equal(naive, warm)
        # Second call reuses every buffer and still matches.
        created = ws.stats.buffers_created
        again, _ = im2col(x, (3, 3), stride, padding, workspace=ws)
        assert np.array_equal(naive, again)
        assert ws.stats.buffers_created == created

    @pytest.mark.parametrize("padding", [(0, 0), (1, 1), (2, 1)])
    def test_col2im_identical(self, rng, padding):
        ws = Workspace()
        shape = (2, 3, 8, 8)
        cols, _ = im2col(rng.standard_normal(shape), (3, 3), (1, 1), padding)
        y = rng.standard_normal(cols.shape)
        naive = col2im(y, shape, (3, 3), (1, 1), padding)
        warm = col2im(y, shape, (3, 3), (1, 1), padding, workspace=ws)
        assert np.array_equal(naive, warm)
        # The scatter base is re-zeroed on every request, so repeated
        # calls must not accumulate.
        again = col2im(y, shape, (3, 3), (1, 1), padding, workspace=ws)
        assert np.array_equal(naive, again)

    def test_padded_slots_keyed_by_split(self, rng):
        """Two calls with the same padded shape but different (ph, pw)
        splits must not share a padded scratch buffer: the zero borders
        live in different places, so a shared buffer would leak one
        call's interior into the other's border.  Results are copied
        out immediately — arena views are invalidated by the next call.
        """
        ws = Workspace()
        x_a = rng.standard_normal((1, 1, 6, 8))  # padded to 8x8 via (1, 0)
        x_b = rng.standard_normal((1, 1, 8, 6))  # padded to 8x8 via (0, 1)
        ref_a, _ = im2col(x_a, (3, 3), (1, 1), (1, 0))
        ref_b, _ = im2col(x_b, (3, 3), (1, 1), (0, 1))
        a1 = im2col(x_a, (3, 3), (1, 1), (1, 0), workspace=ws)[0].copy()
        b1 = im2col(x_b, (3, 3), (1, 1), (0, 1), workspace=ws)[0].copy()
        a2 = im2col(x_a, (3, 3), (1, 1), (1, 0), workspace=ws)[0].copy()
        assert np.array_equal(a1, ref_a)
        assert np.array_equal(b1, ref_b)
        assert np.array_equal(a2, ref_a)
        # Distinct padded slots were created for the two splits.
        slots = {key[0] for key in ws._buffers}
        assert "im2col.padded.1x0" in slots
        assert "im2col.padded.0x1" in slots

"""Precision policy: resolution, Tensor boundary casts, kernel parity.

The policy lives in :mod:`repro.tensor.precision` and is deliberately
process-global (worker threads of the thread-MPI backend must inherit
it).  Every test that flips the mode does so through the ``precision``
context manager or the autouse restore fixture below, so test order
never leaks a mode change.
"""

import numpy as np
import pytest

from repro import tensor as T
from repro.exceptions import ConfigurationError
from repro.tensor import (
    Tensor,
    default_dtype,
    get_precision,
    no_grad,
    precision,
    resolve_precision,
    set_precision,
)
from repro.tensor.blocked import conv2d_forward_blocked
from repro.tensor.workspace import Workspace

#: float32 comparison bounds vs a float64 reference.  One conv layer
#: accumulates C*kh*kw ~ 1e2 products, each with ~6e-8 relative
#: rounding, so per-layer drift stays well under 1e-5 relative.
F32_RTOL = 1e-4
F32_ATOL = 1e-5


@pytest.fixture(autouse=True)
def _restore_precision():
    yield
    set_precision("float64")


class TestResolution:
    def test_default_is_float64(self):
        assert get_precision() == "float64"
        assert default_dtype() == np.float64

    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("float32", "float32"),
            ("fp32", "float32"),
            ("single", "float32"),
            ("float64", "float64"),
            ("fp64", "float64"),
            ("double", "float64"),
            (np.float32, "float32"),
            (np.dtype(np.float64), "float64"),
        ],
    )
    def test_aliases(self, alias, expected):
        assert resolve_precision(alias) == expected

    @pytest.mark.parametrize("bad", ["float16", "int32", "", None, 32])
    def test_unknown_raises(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_precision(bad)

    def test_set_and_get(self):
        set_precision("fp32")
        assert get_precision() == "float32"
        assert default_dtype() == np.float32

    def test_context_manager_restores(self):
        with precision("float32") as dtype:
            assert dtype == np.float32
            assert get_precision() == "float32"
            with precision("float64"):
                assert get_precision() == "float64"
            assert get_precision() == "float32"
        assert get_precision() == "float64"

    def test_context_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with precision("float32"):
                raise RuntimeError("boom")
        assert get_precision() == "float64"


class TestTensorBoundary:
    def test_float64_input_casts_under_float32(self, rng):
        x = rng.standard_normal((3, 3))
        with precision("float32"):
            assert Tensor(x).dtype == np.float32

    def test_explicit_dtype_wins(self, rng):
        with precision("float32"):
            t = Tensor(rng.standard_normal(4), dtype=np.float64)
            assert t.dtype == np.float64

    def test_float32_input_untouched_under_float64(self, rng):
        x = rng.standard_normal(4).astype(np.float32)
        assert Tensor(x).dtype == np.float32

    def test_int_input_follows_policy(self):
        assert Tensor([1, 2, 3]).dtype == np.float64
        with precision("float32"):
            assert Tensor([1, 2, 3]).dtype == np.float32

    @pytest.mark.parametrize("mode", ["float64", "float32"])
    def test_factories_follow_policy(self, mode):
        with precision(mode):
            expected = default_dtype()
            assert T.zeros((2, 2)).dtype == expected
            assert T.ones((2, 2)).dtype == expected
            assert T.full((2, 2), 3.0).dtype == expected
            assert T.randn((2, 2), rng=np.random.default_rng(0)).dtype == expected

    def test_detach_and_copy_preserve_storage_dtype(self, rng):
        t = Tensor(rng.standard_normal(4), dtype=np.float64)
        with precision("float32"):
            # detach stays a view in the original dtype — never a cast
            # copy smuggled in by the boundary rule.
            assert t.detach().dtype == np.float64
            assert t.detach().data is t.data
            assert t.copy().dtype == np.float64

    def test_astype_drops_grad_by_default(self, rng):
        t = Tensor(rng.standard_normal(4), requires_grad=True)
        assert t.astype(np.float32).requires_grad is False
        assert t.astype(np.float32, requires_grad=True).requires_grad is True

    def test_astype_dtype_applied(self, rng):
        t = Tensor(rng.standard_normal(4))
        assert t.astype(np.float32).dtype == np.float32


class TestKernelParity:
    """Each kernel family runs at both precisions; float32 results must
    be float32 end-to-end and match the float64 reference within the
    documented tolerances."""

    def _conv_inputs(self, rng, n=2, c=3, hw=12, f=4, k=3):
        return (
            rng.standard_normal((n, c, hw, hw)),
            rng.standard_normal((f, c, k, k)),
            rng.standard_normal(f),
        )

    def test_conv2d_forward_float32(self, rng):
        x, w, b = self._conv_inputs(rng)
        ref = T.conv2d(Tensor(x), Tensor(w), Tensor(b), padding=1).numpy()
        with precision("float32"):
            got = T.conv2d(Tensor(x), Tensor(w), Tensor(b), padding=1).numpy()
        assert got.dtype == np.float32
        np.testing.assert_allclose(got, ref, rtol=F32_RTOL, atol=F32_ATOL)

    def test_conv2d_fused_forward_float32(self, rng):
        x, w, b = self._conv_inputs(rng)
        with no_grad():
            ref = T.conv2d(
                Tensor(x), Tensor(w), Tensor(b), padding=1,
                activation="leaky_relu", negative_slope=0.1,
            ).numpy()
            with precision("float32"):
                got = T.conv2d(
                    Tensor(x), Tensor(w), Tensor(b), padding=1,
                    activation="leaky_relu", negative_slope=0.1,
                ).numpy()
        assert got.dtype == np.float32
        np.testing.assert_allclose(got, ref, rtol=F32_RTOL, atol=F32_ATOL)

    def test_conv2d_backward_float32(self, rng):
        x, w, b = self._conv_inputs(rng)

        def grads():
            tx = Tensor(x, requires_grad=True)
            tw = Tensor(w, requires_grad=True)
            tb = Tensor(b, requires_grad=True)
            T.conv2d(tx, tw, tb, padding=1).sum().backward()
            return tx.grad, tw.grad, tb.grad

        reference = grads()
        with precision("float32"):
            result = grads()
        for got, ref in zip(result, reference):
            assert got.dtype == np.float32
            np.testing.assert_allclose(got, ref, rtol=1e-3, atol=1e-4)

    def test_fused_backward_float32_stays_float32(self, rng):
        """The leaky-ReLU backward scale must not promote a float32
        gradient back to float64 (the classic np.where leak)."""
        x, w, b = self._conv_inputs(rng)
        with precision("float32"):
            tx = Tensor(x, requires_grad=True)
            tw = Tensor(w, requires_grad=True)
            out = T.conv2d(
                tx, tw, Tensor(b), padding=1,
                activation="leaky_relu", negative_slope=0.1,
            )
            out.sum().backward()
            assert tx.grad.dtype == np.float32
            assert tw.grad.dtype == np.float32

    def test_im2col_preserves_float32(self, rng):
        from repro.tensor.im2col import col2im, im2col

        with precision("float32"):
            x = Tensor(rng.standard_normal((2, 3, 8, 8))).numpy()
            cols, spatial = im2col(x, (3, 3), (1, 1), (1, 1))
            assert cols.dtype == np.float32
            back = col2im(cols, x.shape, (3, 3), (1, 1), (1, 1))
            assert back.dtype == np.float32

    @pytest.mark.parametrize("mode", ["float64", "float32"])
    def test_blocked_kernel_matches_monolithic(self, rng, mode):
        with precision(mode):
            dtype = default_dtype()
            x = rng.standard_normal((2, 3, 20, 24)).astype(dtype)
            w = rng.standard_normal((5, 3, 3, 3)).astype(dtype)
            b = rng.standard_normal(5).astype(dtype)
            with no_grad():
                ref = T.conv2d(
                    Tensor(x), Tensor(w), Tensor(b), padding=1,
                    activation="leaky_relu", negative_slope=0.1,
                ).numpy()
            out, _ = conv2d_forward_blocked(
                x, w, b, (1, 1), (1, 1),
                activation="leaky_relu", negative_slope=0.1,
                workspace=Workspace(),
            )
            assert out.dtype == dtype
            np.testing.assert_allclose(out, ref, rtol=1e-6 if mode == "float32" else 1e-12)

    def test_matmul_float32(self, rng):
        a, b = rng.standard_normal((4, 5)), rng.standard_normal((5, 3))
        ref = T.matmul(Tensor(a), Tensor(b)).numpy()
        with precision("float32"):
            got = T.matmul(Tensor(a), Tensor(b))
        assert got.dtype == np.float32
        np.testing.assert_allclose(got.numpy(), ref, rtol=F32_RTOL, atol=F32_ATOL)


class TestModelAndOptimizer:
    def test_model_parameters_follow_policy(self):
        from repro.core import CNNConfig, SubdomainCNN

        config = CNNConfig(channels=(4, 6, 4), kernel_size=3)
        with precision("float32"):
            model = SubdomainCNN(config, rng=np.random.default_rng(0))
            assert all(p.dtype == np.float32 for p in model.parameters())
            out = model(Tensor(np.random.default_rng(1).standard_normal((1, 4, 8, 8))))
            assert out.dtype == np.float32

    def test_adam_state_follows_param_dtype(self, rng):
        from repro.optim import Adam

        with precision("float32"):
            param = Tensor(rng.standard_normal(6), requires_grad=True)
            optimizer = Adam([param], lr=0.01)
            param.grad = np.ones(6, dtype=np.float32)
            optimizer.step()
            assert param.data.dtype == np.float32
            state = optimizer.state_dict()
            moments = [
                np.asarray(v)
                for value in state.values()
                if isinstance(value, list)
                for v in value
                if v is not None
            ]
            assert moments and all(m.dtype == np.float32 for m in moments)


class TestInferencePlanPrecision:
    def test_plan_casts_float64_input_to_model_dtype(self, rng):
        from repro.core import CNNConfig, InferencePlan, SubdomainCNN

        config = CNNConfig(channels=(4, 6, 4), kernel_size=3)
        with precision("float32"):
            model = SubdomainCNN(config, rng=np.random.default_rng(0))
            plan = InferencePlan(model)
        assert plan.compute_dtype == np.float32
        x64 = rng.standard_normal((1, 4, 10, 10))
        out = plan.run(x64)
        assert out.dtype == np.float32
        # Warmed up: repeat runs reuse the cast slot, results identical.
        assert np.array_equal(out.copy(), plan.run(x64))

    def test_plan_matches_module_forward_float32(self, rng):
        from repro.core import CNNConfig, InferencePlan, SubdomainCNN

        config = CNNConfig(channels=(4, 6, 4), kernel_size=3)
        with precision("float32"):
            model = SubdomainCNN(config, rng=np.random.default_rng(0))
            plan = InferencePlan(model)
            x = Tensor(rng.standard_normal((1, 4, 12, 12)))
            with no_grad():
                expected = model(x).numpy()
            got = plan.run(x.numpy())
        assert got.dtype == expected.dtype == np.float32
        # Not bitwise like the float64 pins: BLAS may pick a different
        # sgemm kernel for the plan's pre-bound output buffer, which is
        # free to reassociate the accumulation by a ulp.
        np.testing.assert_allclose(got, expected, rtol=1e-6, atol=1e-6)


class TestProcessBackendPrecision:
    def test_rank_processes_inherit_float32(self):
        from repro import mpi

        def program(comm):
            return Tensor([1.0, 2.0]).dtype == np.float32

        with precision("float32"):
            results = mpi.run_parallel(program, 2, backend="processes")
        assert results == [True, True]


class TestRestorationPaths:
    """The mode must survive exceptions: a crashed scoped block or a
    rejected set_precision call may not leave the process stuck in the
    wrong compute mode (every later Tensor would inherit it)."""

    def test_context_restores_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with precision("float32"):
                assert get_precision() == "float32"
                raise RuntimeError("boom")
        assert get_precision() == "float64"

    def test_nested_contexts_restore_on_inner_exception(self):
        with precision("float32"):
            with pytest.raises(ValueError):
                with precision("float64"):
                    assert get_precision() == "float64"
                    raise ValueError("inner")
            assert get_precision() == "float32"
        assert get_precision() == "float64"

    def test_invalid_set_precision_leaves_mode_unchanged(self):
        set_precision("float32")
        with pytest.raises(ConfigurationError):
            set_precision("float16")
        assert get_precision() == "float32"

    def test_invalid_context_value_leaves_mode_unchanged(self):
        with pytest.raises(ConfigurationError):
            with precision("bfloat16"):
                pass  # pragma: no cover - never entered
        assert get_precision() == "float64"


class TestPlanWarmupAcrossModes:
    """A plan computes in its *parameters'* dtype, not the global mode
    at run time: warming up under a policy different from the
    checkpoint's recorded mode must not silently mix dtypes."""

    def test_float32_model_warmed_under_float64_policy(self, rng):
        from repro.core import CNNConfig, InferencePlan, SubdomainCNN

        config = CNNConfig(channels=(4, 6, 4), kernel_size=3)
        with precision("float32"):
            model = SubdomainCNN(config, rng=np.random.default_rng(0))
        # Global mode is float64 again here; the plan must still follow
        # the model's float32 parameters end to end.
        plan = InferencePlan(model)
        assert plan.compute_dtype == np.float32
        x64 = rng.standard_normal((1, 4, 10, 10))
        first = plan.run(x64).copy()
        assert first.dtype == np.float32
        # Warmed-up repeat under yet another mode: still float32, still
        # the same answer — no dtype leaks through the workspace slots.
        with precision("float32"):
            assert np.array_equal(plan.run(x64), first)

    def test_float64_model_warmed_under_float32_policy(self, rng):
        from repro.core import CNNConfig, InferencePlan, SubdomainCNN

        config = CNNConfig(channels=(4, 6, 4), kernel_size=3)
        model = SubdomainCNN(config, rng=np.random.default_rng(0))
        with precision("float32"):
            plan = InferencePlan(model)
            assert plan.compute_dtype == np.float64
            out = plan.run(rng.standard_normal((1, 4, 10, 10)).astype(np.float32))
        assert out.dtype == np.float64

    def test_checkpoint_roundtrip_keeps_recorded_mode(self, rng, tmp_path):
        from repro.core import (
            CNNConfig,
            InferencePlan,
            ParallelTrainer,
            TrainingConfig,
            load_checkpoint_precision,
            load_parallel_models,
            save_parallel_models,
        )

        from repro.data import SnapshotDataset

        data = SnapshotDataset(rng.standard_normal((4, 4, 12, 12)))
        with precision("float32"):
            trainer = ParallelTrainer(
                cnn_config=CNNConfig(channels=(4, 6, 4), kernel_size=3),
                training_config=TrainingConfig(epochs=1, batch_size=2, seed=0),
                num_ranks=1,
            )
            result = trainer.train(data)
        path = tmp_path / "model32.npz"
        save_parallel_models(path, result, precision="float32")
        assert load_checkpoint_precision(path) == "float32"
        # Loading under the default float64 process mode must rebuild
        # float32 parameters and a float32-computing plan.
        models, _decomposition, _config = load_parallel_models(
            path, precision=load_checkpoint_precision(path)
        )
        plan = InferencePlan(models[0])
        assert plan.compute_dtype == np.float32
        out = plan.run(rng.standard_normal((1, 4, 10, 10)))
        assert out.dtype == np.float32

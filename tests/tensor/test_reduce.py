"""Reduction op tests."""

import numpy as np

from repro import tensor as T
from repro.tensor import Tensor

from ..conftest import assert_gradcheck


class TestForward:
    def test_sum_all(self):
        assert T.tensor_sum(Tensor(np.arange(6.0))).item() == 15.0

    def test_sum_axis_keepdims(self):
        a = Tensor(np.ones((2, 3)))
        assert T.tensor_sum(a, axis=1).shape == (2,)
        assert T.tensor_sum(a, axis=1, keepdims=True).shape == (2, 1)

    def test_sum_negative_axis(self):
        a = Tensor(np.ones((2, 3)))
        assert np.allclose(T.tensor_sum(a, axis=-1).data, [3.0, 3.0])

    def test_sum_multiple_axes(self):
        a = Tensor(np.ones((2, 3, 4)))
        assert T.tensor_sum(a, axis=(0, 2)).shape == (3,)

    def test_mean(self):
        a = Tensor(np.array([[1.0, 3.0], [5.0, 7.0]]))
        assert T.tensor_mean(a).item() == 4.0
        assert np.allclose(T.tensor_mean(a, axis=0).data, [3.0, 5.0])

    def test_max_min(self):
        a = Tensor(np.array([[1.0, 9.0], [5.0, 7.0]]))
        assert T.tensor_max(a).item() == 9.0
        assert T.tensor_min(a).item() == 1.0
        assert np.allclose(T.tensor_max(a, axis=0).data, [5.0, 9.0])


class TestGradients:
    def test_sum_grad(self, rng):
        assert_gradcheck(lambda x: T.tensor_sum(x, axis=1) * 2.0, rng.standard_normal((3, 4)))

    def test_mean_grad(self, rng):
        assert_gradcheck(
            lambda x: T.tensor_mean(x, axis=0, keepdims=True) * x,
            rng.standard_normal((3, 4)),
        )

    def test_max_grad_unique(self):
        a = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        T.tensor_max(a).backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])

    def test_max_grad_ties_split(self):
        a = Tensor(np.array([5.0, 5.0, 3.0]), requires_grad=True)
        T.tensor_max(a).backward()
        assert np.allclose(a.grad, [0.5, 0.5, 0.0])

    def test_min_grad_axis(self):
        a = Tensor(np.array([[2.0, 1.0], [0.0, 9.0]]), requires_grad=True)
        T.tensor_min(a, axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_max_grad_numeric(self, rng):
        a = rng.standard_normal((4, 5))  # distinct values a.s.
        assert_gradcheck(lambda x: T.tensor_max(x, axis=1), a)

    def test_mean_all_grad_value(self):
        a = Tensor(np.zeros((2, 5)), requires_grad=True)
        T.tensor_mean(a).backward()
        assert np.allclose(a.grad, np.full((2, 5), 0.1))

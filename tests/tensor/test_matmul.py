"""Matmul forward/backward across shape regimes."""

import numpy as np

from repro.tensor import Tensor

from ..conftest import assert_gradcheck


class TestForward:
    def test_matrix_matrix(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 5))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_batched(self, rng):
        a = rng.standard_normal((6, 3, 4))
        b = rng.standard_normal((6, 4, 2))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_broadcast_batch(self, rng):
        a = rng.standard_normal((6, 3, 4))
        b = rng.standard_normal((4, 2))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_vector_matrix(self, rng):
        a = rng.standard_normal(3)
        b = rng.standard_normal((3, 5))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_matrix_vector(self, rng):
        a = rng.standard_normal((4, 3))
        b = rng.standard_normal(3)
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_vector_vector(self, rng):
        a = rng.standard_normal(5)
        b = rng.standard_normal(5)
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)


class TestGradients:
    def test_matrix_matrix_grad(self, rng):
        assert_gradcheck(
            lambda x, y: x @ y, rng.standard_normal((3, 4)), rng.standard_normal((4, 5))
        )

    def test_batched_grad(self, rng):
        assert_gradcheck(
            lambda x, y: x @ y,
            rng.standard_normal((2, 3, 4)),
            rng.standard_normal((2, 4, 2)),
        )

    def test_broadcast_batch_grad(self, rng):
        assert_gradcheck(
            lambda x, y: x @ y,
            rng.standard_normal((2, 3, 4)),
            rng.standard_normal((4, 2)),
        )

    def test_matrix_vector_grad(self, rng):
        assert_gradcheck(
            lambda x, y: x @ y, rng.standard_normal((4, 3)), rng.standard_normal(3)
        )

    def test_vector_vector_grad(self, rng):
        assert_gradcheck(
            lambda x, y: x @ y, rng.standard_normal(5), rng.standard_normal(5)
        )

    def test_chained_matmul_grad(self, rng):
        assert_gradcheck(
            lambda x, y, z: (x @ y) @ z,
            rng.standard_normal((2, 3)),
            rng.standard_normal((3, 3)),
            rng.standard_normal((3, 2)),
        )

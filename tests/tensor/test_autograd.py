"""Tests for the reverse-mode engine itself."""

import numpy as np
import pytest

from repro.exceptions import AutogradError
from repro.tensor import Tensor, no_grad, enable_grad, grad_enabled
from repro.tensor.autograd import topological_order, unbroadcast


class TestBackwardMechanics:
    def test_scalar_backward_seeds_ones(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        a.sum().backward()
        assert np.allclose(a.grad, np.ones(3))

    def test_explicit_seed(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a * 2.0
        out.backward(np.array([1.0, 10.0]))
        assert np.allclose(a.grad, [2.0, 20.0])

    def test_backward_without_grad_raises(self):
        with pytest.raises(AutogradError):
            Tensor([1.0]).backward()

    def test_non_scalar_without_seed_raises(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(AutogradError, match="scalar"):
            (a * 2.0).backward()

    def test_seed_shape_mismatch_raises(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(AutogradError, match="shape"):
            (a * 2.0).backward(np.zeros(3))

    def test_diamond_graph_accumulates(self):
        # y = a*a + a*a: both branches contribute.
        a = Tensor([3.0], requires_grad=True)
        b = a * a
        c = a * a
        (b + c).sum().backward()
        assert np.allclose(a.grad, [12.0])

    def test_shared_subexpression(self):
        a = Tensor([2.0], requires_grad=True)
        shared = a * 3.0
        out = shared * shared  # d/da (9 a^2) = 18 a
        out.sum().backward()
        assert np.allclose(a.grad, [36.0])

    def test_deep_chain_does_not_recurse(self):
        # 5000-op chain would overflow a recursive implementation.
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(5000):
            x = x + 0.0
        x.sum().backward()
        assert np.allclose(a.grad, [1.0])

    def test_aliased_parent_gradients_not_corrupted(self):
        # Regression: `add` hands the SAME gradient array to both
        # parents; accumulating into one must not corrupt the other.
        x = Tensor([1.0], requires_grad=True)
        y = Tensor([1.0], requires_grad=True)
        out = (x * y) + (x / y) - y + x  # dx = y + 1/y + 1 = 3
        out.sum().backward()
        assert np.allclose(x.grad, [3.0])
        assert np.allclose(y.grad, [1.0 - 1.0 - 1.0])

    def test_seed_array_not_mutated(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a + a
        seed = np.array([1.0, 1.0])
        out.backward(seed)
        assert np.allclose(seed, [1.0, 1.0])
        assert np.allclose(a.grad, [2.0, 2.0])

    def test_constant_branch_gets_no_grad(self):
        a = Tensor([1.0], requires_grad=True)
        const = Tensor([5.0])
        (a * const).sum().backward()
        assert const.grad is None


class TestGradMode:
    def test_no_grad_detaches(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad
        assert out.is_leaf()

    def test_no_grad_nesting_restores(self):
        assert grad_enabled()
        with no_grad():
            assert not grad_enabled()
            with no_grad():
                assert not grad_enabled()
            assert not grad_enabled()
        assert grad_enabled()

    def test_enable_grad_inside_no_grad(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            with enable_grad():
                out = a * 2.0
        assert out.requires_grad

    def test_no_grad_is_thread_local(self):
        import threading

        seen = {}

        def worker():
            seen["inner"] = grad_enabled()

        with no_grad():
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # The other thread's default mode is unaffected by ours.
        assert seen["inner"] is True


class TestTopologicalOrder:
    def test_root_is_last(self):
        a = Tensor([1.0], requires_grad=True)
        out = (a * 2.0) + 1.0
        order = topological_order(out)
        assert order[-1] is out

    def test_parents_before_children(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * 2.0
        c = b + 1.0
        order = topological_order(c)
        assert order.index(b) < order.index(c)
        assert order.index(a) < order.index(b)

    def test_each_node_once(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * a
        out = b * b
        order = topological_order(out)
        assert len(order) == len({id(n) for n in order})


class TestUnbroadcast:
    def test_identity_when_same_shape(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sum_over_added_axes(self):
        g = np.ones((4, 2, 3))
        out = unbroadcast(g, (2, 3))
        assert out.shape == (2, 3)
        assert np.all(out == 4.0)

    def test_sum_over_size_one_axes(self):
        g = np.ones((2, 5))
        out = unbroadcast(g, (2, 1))
        assert out.shape == (2, 1)
        assert np.all(out == 5.0)

    def test_combined(self):
        g = np.ones((7, 2, 5))
        out = unbroadcast(g, (1, 5))
        assert out.shape == (1, 5)
        assert np.all(out == 14.0)

    def test_scalar_target(self):
        g = np.ones((3, 3))
        out = unbroadcast(g, ())
        assert out.shape == ()
        assert out == 9.0

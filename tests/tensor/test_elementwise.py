"""Forward values and gradients of the elementwise ops."""

import numpy as np
import pytest

from repro import tensor as T
from repro.tensor import Tensor

from ..conftest import assert_gradcheck


class TestForwardValues:
    def test_add_sub_mul_div(self):
        a = Tensor([6.0, 8.0])
        b = Tensor([2.0, 4.0])
        assert np.allclose((a + b).data, [8.0, 12.0])
        assert np.allclose((a - b).data, [4.0, 4.0])
        assert np.allclose((a * b).data, [12.0, 32.0])
        assert np.allclose((a / b).data, [3.0, 2.0])

    def test_broadcasting(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.array([1.0, 2.0, 3.0]))
        assert np.allclose((a * b).data, np.tile([1.0, 2.0, 3.0], (2, 1)))

    def test_neg_pow(self):
        a = Tensor([2.0, -3.0])
        assert np.allclose((-a).data, [-2.0, 3.0])
        assert np.allclose((a ** 2).data, [4.0, 9.0])

    def test_exp_log_roundtrip(self):
        a = Tensor([0.5, 1.5])
        assert np.allclose(T.log(T.exp(a)).data, a.data)

    def test_abs_sign_convention(self):
        assert np.allclose(T.absolute(Tensor([-2.0, 0.0, 3.0])).data, [2.0, 0.0, 3.0])

    def test_maximum_minimum(self):
        a, b = Tensor([1.0, 5.0]), Tensor([3.0, 2.0])
        assert np.allclose(T.maximum(a, b).data, [3.0, 5.0])
        assert np.allclose(T.minimum(a, b).data, [1.0, 2.0])

    def test_clip(self):
        a = Tensor([-5.0, 0.5, 5.0])
        assert np.allclose(T.clip(a, -1.0, 1.0).data, [-1.0, 0.5, 1.0])
        assert np.allclose(T.clip(a, None, 1.0).data, [-5.0, 0.5, 1.0])
        assert np.allclose(T.clip(a, -1.0, None).data, [-1.0, 0.5, 5.0])

    def test_where(self):
        out = T.where(np.array([True, False]), Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        assert np.allclose(out.data, [1.0, 2.0])


class TestActivationsForward:
    def test_relu_eq1(self):
        # Eq. (1): max(0, x).
        a = Tensor([-1.0, 0.0, 2.0])
        assert np.allclose(T.relu(a).data, [0.0, 0.0, 2.0])

    def test_leaky_relu_eq2(self):
        # Eq. (2): x for x>=0, eps*x otherwise.
        a = Tensor([-2.0, 0.0, 3.0])
        assert np.allclose(T.leaky_relu(a, 0.01).data, [-0.02, 0.0, 3.0])

    def test_leaky_relu_custom_slope(self):
        a = Tensor([-10.0])
        assert np.allclose(T.leaky_relu(a, 0.2).data, [-2.0])

    def test_sigmoid_range_and_symmetry(self):
        x = np.linspace(-50, 50, 101)
        out = T.sigmoid(Tensor(x)).data
        assert np.all((out >= 0) & (out <= 1))
        assert np.allclose(out + out[::-1], 1.0, atol=1e-12)

    def test_sigmoid_extreme_values_stable(self):
        out = T.sigmoid(Tensor([-1000.0, 1000.0])).data
        assert np.all(np.isfinite(out))
        assert np.allclose(out, [0.0, 1.0])

    def test_tanh(self):
        assert np.allclose(T.tanh(Tensor([0.0])).data, [0.0])


class TestGradients:
    def test_arithmetic_grad(self, rng):
        # Keep denominators well away from zero for finite differences.
        a = rng.uniform(2.0, 4.0, (3, 4))
        b = rng.uniform(2.0, 4.0, (3, 4))
        assert_gradcheck(lambda x, y: x * y + x / y - y + x, a, b)

    def test_broadcast_grad(self, rng):
        a = rng.standard_normal((2, 3))
        b = rng.standard_normal((3,))
        assert_gradcheck(lambda x, y: x * y + y, a, b)

    def test_pow_grad(self, rng):
        a = np.abs(rng.standard_normal((3, 3))) + 0.5
        assert_gradcheck(lambda x: x ** 3, a)
        assert_gradcheck(lambda x: x ** 0.5, a)

    def test_exp_log_grad(self, rng):
        a = np.abs(rng.standard_normal((4,))) + 0.5
        assert_gradcheck(lambda x: T.exp(x) + T.log(x), a)

    def test_abs_grad_away_from_zero(self, rng):
        a = rng.standard_normal((5,))
        a[np.abs(a) < 0.1] = 0.5
        assert_gradcheck(lambda x: T.absolute(x), a)

    def test_extrema_grads(self, rng):
        a = rng.standard_normal((4, 4))
        b = rng.standard_normal((4, 4))
        assert_gradcheck(lambda x, y: T.maximum(x, y) + T.minimum(x, y), a, b)

    def test_clip_grad_zero_outside(self):
        a = Tensor([-5.0, 0.5, 5.0], requires_grad=True)
        T.clip(a, -1.0, 1.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])

    def test_activation_grads(self, rng):
        a = rng.standard_normal((6, 6))
        a[np.abs(a) < 0.05] = 0.3  # avoid kinks for FD comparison
        assert_gradcheck(lambda x: T.relu(x), a)
        assert_gradcheck(lambda x: T.leaky_relu(x, 0.01), a)
        assert_gradcheck(lambda x: T.sigmoid(x), a)
        assert_gradcheck(lambda x: T.tanh(x), a)

    def test_where_grad_routes_by_mask(self):
        a = Tensor([1.0, 1.0], requires_grad=True)
        b = Tensor([2.0, 2.0], requires_grad=True)
        T.where(np.array([True, False]), a, b).sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0])
        assert np.allclose(b.grad, [0.0, 1.0])

    def test_leaky_relu_grad_at_negative(self):
        a = Tensor([-2.0], requires_grad=True)
        T.leaky_relu(a, 0.01).sum().backward()
        assert np.allclose(a.grad, [0.01])

"""Convolution op tests: against SciPy, gradients, adjointness."""

import numpy as np
import pytest
from scipy.signal import correlate

from repro import tensor as T
from repro.exceptions import ShapeError
from repro.tensor import Tensor

from ..conftest import assert_gradcheck


def scipy_conv2d(x, w, b, padding):
    n, c, h, wdt = x.shape
    f = w.shape[0]
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = h + 2 * padding - w.shape[2] + 1
    ow = wdt + 2 * padding - w.shape[3] + 1
    out = np.zeros((n, f, oh, ow))
    for ni in range(n):
        for fi in range(f):
            acc = np.zeros((oh, ow))
            for ci in range(c):
                acc += correlate(xp[ni, ci], w[fi, ci], mode="valid")
            out[ni, fi] = acc + (b[fi] if b is not None else 0.0)
    return out


class TestConv2dForward:
    @pytest.mark.parametrize("padding", [0, 1, 2])
    def test_matches_scipy(self, rng, padding):
        x = rng.standard_normal((2, 3, 8, 9))
        w = rng.standard_normal((4, 3, 3, 3))
        b = rng.standard_normal(4)
        out = T.conv2d(Tensor(x), Tensor(w), Tensor(b), padding=padding).numpy()
        assert np.allclose(out, scipy_conv2d(x, w, b, padding))

    def test_no_bias(self, rng):
        x = rng.standard_normal((1, 2, 5, 5))
        w = rng.standard_normal((3, 2, 3, 3))
        out = T.conv2d(Tensor(x), Tensor(w)).numpy()
        assert np.allclose(out, scipy_conv2d(x, w, None, 0))

    def test_stride(self, rng):
        x = rng.standard_normal((1, 1, 8, 8))
        w = rng.standard_normal((1, 1, 3, 3))
        out = T.conv2d(Tensor(x), Tensor(w), stride=2).numpy()
        full = scipy_conv2d(x, w, None, 0)
        assert np.allclose(out, full[:, :, ::2, ::2])

    def test_identity_kernel(self):
        x = np.arange(25.0).reshape(1, 1, 5, 5)
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        out = T.conv2d(Tensor(x), Tensor(w), padding=1).numpy()
        assert np.allclose(out, x)

    def test_shape_errors(self, rng):
        with pytest.raises(ShapeError):
            T.conv2d(Tensor(rng.standard_normal((3, 8, 8))), Tensor(rng.standard_normal((1, 3, 3, 3))))
        with pytest.raises(ShapeError):
            T.conv2d(
                Tensor(rng.standard_normal((1, 3, 8, 8))),
                Tensor(rng.standard_normal((1, 4, 3, 3))),
            )
        with pytest.raises(ShapeError):
            T.conv2d(
                Tensor(rng.standard_normal((1, 3, 8, 8))),
                Tensor(rng.standard_normal((2, 3, 3, 3))),
                Tensor(rng.standard_normal(3)),
            )


class TestConv2dGradients:
    def test_gradcheck_padded(self, rng):
        x = rng.standard_normal((2, 2, 5, 6))
        w = rng.standard_normal((3, 2, 3, 3))
        b = rng.standard_normal(3)
        assert_gradcheck(lambda a, c, d: T.conv2d(a, c, d, padding=1), x, w, b)

    def test_gradcheck_strided(self, rng):
        x = rng.standard_normal((1, 2, 7, 7))
        w = rng.standard_normal((2, 2, 3, 3))
        assert_gradcheck(lambda a, c: T.conv2d(a, c, stride=2), x, w)

    def test_grad_skipped_for_frozen_inputs(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 5, 5)))
        w = Tensor(rng.standard_normal((1, 1, 3, 3)), requires_grad=True)
        T.conv2d(x, w, padding=1).sum().backward()
        assert w.grad is not None
        assert x.grad is None


class TestConvTranspose2d:
    def test_output_shape(self, rng):
        x = rng.standard_normal((1, 3, 5, 5))
        w = rng.standard_normal((3, 2, 4, 4))
        out = T.conv_transpose2d(Tensor(x), Tensor(w), stride=2).numpy()
        assert out.shape == (1, 2, 12, 12)

    def test_adjoint_of_conv(self, rng):
        """<conv(x), y> == <x, conv_T(y)> with shared weights."""
        x = rng.standard_normal((2, 3, 6, 7))
        w = rng.standard_normal((4, 3, 3, 3))
        y = rng.standard_normal((2, 4, 6, 7))
        cx = T.conv2d(Tensor(x), Tensor(w), padding=1).numpy()
        aty = T.conv_transpose2d(Tensor(y), Tensor(w), padding=1).numpy()
        assert np.isclose(np.sum(cx * y), np.sum(x * aty))

    def test_inverts_conv_shrinkage(self, rng):
        """A k-kernel transpose conv restores what a valid k-conv removed."""
        x = Tensor(rng.standard_normal((1, 2, 10, 10)))
        w1 = Tensor(rng.standard_normal((3, 2, 5, 5)))
        w2 = Tensor(rng.standard_normal((3, 2, 5, 5)))
        mid = T.conv2d(x, w1)  # -> 6x6
        out = T.conv_transpose2d(mid, w2)  # -> 10x10
        assert out.shape == (1, 2, 10, 10)

    def test_gradcheck(self, rng):
        x = rng.standard_normal((1, 3, 4, 4))
        w = rng.standard_normal((3, 2, 3, 3))
        b = rng.standard_normal(2)
        assert_gradcheck(lambda a, c, d: T.conv_transpose2d(a, c, d, padding=1), x, w, b)

    def test_gradcheck_strided(self, rng):
        x = rng.standard_normal((1, 2, 4, 4))
        w = rng.standard_normal((2, 2, 3, 3))
        assert_gradcheck(lambda a, c: T.conv_transpose2d(a, c, stride=2), x, w)

    def test_shape_errors(self, rng):
        with pytest.raises(ShapeError):
            T.conv_transpose2d(
                Tensor(rng.standard_normal((1, 3, 5, 5))),
                Tensor(rng.standard_normal((2, 2, 3, 3))),
            )

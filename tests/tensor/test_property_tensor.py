"""Property-based tests (hypothesis) on autodiff invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro import tensor as T
from repro.tensor import Tensor
from repro.tensor.autograd import unbroadcast
from repro.tensor.im2col import col2im, im2col

finite_arrays = arrays(
    dtype=np.float64,
    shape=array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=5),
    elements=st.floats(-10, 10, allow_nan=False),
)


@given(finite_arrays)
@settings(max_examples=50, deadline=None)
def test_add_grad_is_ones(data):
    a = Tensor(data, requires_grad=True)
    (a + 1.0).sum().backward()
    assert np.allclose(a.grad, np.ones_like(data))


@given(finite_arrays, st.floats(0.1, 3.0))
@settings(max_examples=50, deadline=None)
def test_scalar_mul_grad(data, k):
    a = Tensor(data, requires_grad=True)
    (a * k).sum().backward()
    assert np.allclose(a.grad, np.full_like(data, k))


@given(finite_arrays)
@settings(max_examples=50, deadline=None)
def test_sum_then_backward_matches_mean_scaled(data):
    a = Tensor(data, requires_grad=True)
    a.mean().backward()
    assert np.allclose(a.grad, np.full_like(data, 1.0 / data.size))


@given(finite_arrays)
@settings(max_examples=50, deadline=None)
def test_relu_plus_negrelu_is_identity(data):
    a = Tensor(data)
    reconstructed = T.relu(a).data - T.relu(-a).data
    assert np.allclose(reconstructed, data)


@given(finite_arrays)
@settings(max_examples=50, deadline=None)
def test_leaky_relu_bounds(data):
    out = T.leaky_relu(Tensor(data), 0.01).data
    assert np.all(out <= np.maximum(data, 0.0) + 1e-12)
    assert np.all(out >= np.minimum(data, 0.01 * data) - 1e-12)


@given(
    arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=2, max_dims=4, min_side=1, max_side=4),
        elements=st.floats(-5, 5, allow_nan=False),
    )
)
@settings(max_examples=50, deadline=None)
def test_unbroadcast_preserves_total_sum(grad):
    """Summing over broadcast axes must conserve the total gradient mass."""
    target_shape = tuple(1 for _ in range(grad.ndim - 1)) + (grad.shape[-1],)
    out = unbroadcast(grad, target_shape)
    assert out.shape == target_shape
    assert np.isclose(out.sum(), grad.sum())


@given(
    st.integers(1, 2),
    st.integers(1, 3),
    st.integers(4, 8),
    st.integers(4, 8),
    st.integers(1, 3),
    st.integers(1, 2),
)
@settings(max_examples=40, deadline=None)
def test_im2col_col2im_adjoint(n, c, h, w, k, s):
    """The adjoint identity holds for arbitrary geometry."""
    if (h - k) < 0 or (w - k) < 0:
        return
    rng = np.random.default_rng(42)
    x = rng.standard_normal((n, c, h, w))
    cols, _ = im2col(x, (k, k), (s, s))
    y = rng.standard_normal(cols.shape)
    back = col2im(y, x.shape, (k, k), (s, s))
    assert np.isclose(np.sum(cols * y), np.sum(x * back), rtol=1e-9)


@given(finite_arrays, finite_arrays)
@settings(max_examples=50, deadline=None)
def test_maximum_commutes_with_swap(a, b):
    if a.shape != b.shape:
        return
    m1 = T.maximum(Tensor(a), Tensor(b)).data
    m2 = T.maximum(Tensor(b), Tensor(a)).data
    assert np.allclose(m1, m2)

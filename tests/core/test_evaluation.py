"""Parallel-evaluation tests."""

import numpy as np
import pytest

from repro.core import (
    CNNConfig,
    PaddingStrategy,
    ParallelTrainer,
    TrainingConfig,
    evaluate_parallel,
)
from repro.data import SnapshotDataset, synthetic_advection_snapshots
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def trained():
    snaps = synthetic_advection_snapshots(grid_size=16, num_snapshots=10, seed=0)
    dataset = SnapshotDataset(snaps)
    train, validation = dataset.split(7)
    trainer = ParallelTrainer(
        CNNConfig(channels=(4, 6, 4), kernel_size=3, strategy=PaddingStrategy.NEIGHBOR_FIRST),
        TrainingConfig(epochs=3, batch_size=4, lr=0.01, loss="mse", seed=0),
        num_ranks=4,
    )
    return trainer.train(train, execution="serial"), validation


class TestEvaluateParallel:
    def test_global_matches_serial_reference(self, trained):
        """The allreduce-aggregated metric equals the serial one."""
        result, validation = trained
        evaluation = evaluate_parallel(result, validation)

        # Serial reference: predict every rank block, accumulate.
        from repro.core import build_rank_dataset
        from repro.core.trainer import predict

        models = result.build_models()
        sse = sst = count = 0.0
        for rank, model in enumerate(models):
            data = build_rank_dataset(
                validation, result.decomposition, rank,
                halo=result.cnn_config.input_halo,
            )
            prediction = predict(model, data.inputs)
            diff = prediction - data.targets
            sse += float(np.sum(diff**2))
            sst += float(np.sum(data.targets**2))
            count += diff.size
        assert np.isclose(evaluation.global_relative_l2, np.sqrt(sse / sst))
        assert np.isclose(evaluation.global_rmse, np.sqrt(sse / count))

    def test_per_rank_errors_populated(self, trained):
        result, validation = trained
        evaluation = evaluate_parallel(result, validation)
        assert len(evaluation.per_rank_relative_l2) == 4
        assert all(np.isfinite(e) for e in evaluation.per_rank_relative_l2)
        assert 0 <= evaluation.worst_rank() < 4

    def test_sample_count(self, trained):
        result, validation = trained
        evaluation = evaluate_parallel(result, validation)
        assert evaluation.num_samples == validation.num_samples

    def test_field_shape_mismatch_raises(self, trained):
        result, _ = trained
        wrong = SnapshotDataset(
            synthetic_advection_snapshots(grid_size=12, num_snapshots=4, seed=1)
        )
        with pytest.raises(ConfigurationError):
            evaluate_parallel(result, wrong)

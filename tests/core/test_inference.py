"""Parallel-inference tests, including the decomposition-consistency
theorem: with identical weights and an all-valid network, the
domain-decomposed prediction with halo exchange must equal the global
single-network prediction exactly."""

import numpy as np
import pytest

from repro.core import (
    CNNConfig,
    PaddingStrategy,
    ParallelPredictor,
    SequentialPredictor,
    SubdomainCNN,
)
from repro.domain import BlockDecomposition
from repro.exceptions import ConfigurationError, ShapeError
from repro.tensor import Tensor


def clone_models(config, num, seed=0):
    """num models with identical weights."""
    reference = SubdomainCNN(config, rng=np.random.default_rng(seed))
    models = []
    for _ in range(num):
        model = SubdomainCNN(config, rng=np.random.default_rng(123))
        model.load_state_dict(reference.state_dict())
        models.append(model)
    return reference, models


class TestDecompositionConsistency:
    @pytest.mark.parametrize("num_ranks", [1, 2, 4])
    def test_neighbor_all_equals_global_network(self, rng, num_ranks):
        """The exact-consistency identity of the scheme: valid
        convolutions + full halo = a restriction of the global conv.

        The global input must be zero-padded by the halo (the same
        zero fill the ranks use at physical boundaries).
        """
        config = CNNConfig(
            channels=(4, 6, 4), kernel_size=3, strategy=PaddingStrategy.NEIGHBOR_ALL
        )
        reference, models = clone_models(config, num_ranks)
        halo = reference.input_halo
        field = rng.standard_normal((4, 12, 12))
        decomp = BlockDecomposition.from_num_ranks((12, 12), num_ranks)

        parallel = ParallelPredictor(models, decomp)
        result = parallel.rollout(field, num_steps=1)

        padded = np.pad(field, ((0, 0), (halo, halo), (halo, halo)))
        expected = reference(Tensor(padded[None])).numpy()[0]

        assert np.allclose(result.trajectory[1], expected, atol=1e-12)

    def test_neighbor_all_multi_step_consistency(self, rng):
        """The identity must survive autoregressive feedback."""
        config = CNNConfig(
            channels=(4, 4), kernel_size=3, strategy=PaddingStrategy.NEIGHBOR_ALL
        )
        reference, models = clone_models(config, 4)
        halo = reference.input_halo
        field = rng.standard_normal((4, 8, 8))
        decomp = BlockDecomposition.from_num_ranks((8, 8), 4)
        result = ParallelPredictor(models, decomp).rollout(field, num_steps=3)

        state = field
        for _ in range(3):
            padded = np.pad(state, ((0, 0), (halo, halo), (halo, halo)))
            state = reference(Tensor(padded[None])).numpy()[0]
        assert np.allclose(result.trajectory[3], state, atol=1e-10)

    def test_neighbor_first_differs_from_global(self, rng):
        """Strategy 2 zero-pads interior layers at subdomain interfaces,
        so it is an *approximation* — the outputs must differ near the
        interface (this documents the scheme's accuracy trade-off)."""
        config = CNNConfig(
            channels=(4, 6, 4), kernel_size=3, strategy=PaddingStrategy.NEIGHBOR_FIRST
        )
        reference, models = clone_models(config, 4)
        field = rng.standard_normal((4, 12, 12))
        decomp = BlockDecomposition.from_num_ranks((12, 12), 4)
        result = ParallelPredictor(models, decomp).rollout(field, num_steps=1)

        halo = reference.input_halo
        padded = np.pad(field, ((0, 0), (halo, halo), (halo, halo)))
        global_out = reference(Tensor(padded[None])).numpy()[0]
        assert not np.allclose(result.trajectory[1], global_out)


class TestRolloutMechanics:
    def test_trajectory_shape_and_initial_state(self, rng):
        config = CNNConfig(channels=(4, 4), kernel_size=3, strategy=PaddingStrategy.ZERO)
        _, models = clone_models(config, 2)
        field = rng.standard_normal((4, 8, 8))
        decomp = BlockDecomposition.from_num_ranks((8, 8), 2)
        result = ParallelPredictor(models, decomp).rollout(field, num_steps=4)
        assert result.trajectory.shape == (5, 4, 8, 8)
        assert result.num_steps == 4
        assert np.allclose(result.trajectory[0], field)

    def test_zero_strategy_sends_no_messages(self, rng):
        config = CNNConfig(channels=(4, 4), kernel_size=3, strategy=PaddingStrategy.ZERO)
        _, models = clone_models(config, 4)
        decomp = BlockDecomposition.from_num_ranks((8, 8), 4)
        result = ParallelPredictor(models, decomp).rollout(
            rng.standard_normal((4, 8, 8)), num_steps=2
        )
        assert result.messages_sent == 0
        assert result.bytes_sent == 0

    def test_neighbour_strategy_message_accounting(self, rng):
        config = CNNConfig(
            channels=(4, 4), kernel_size=3, strategy=PaddingStrategy.NEIGHBOR_ALL
        )
        _, models = clone_models(config, 4)
        decomp = BlockDecomposition.from_num_ranks((8, 8), 4)
        result = ParallelPredictor(models, decomp).rollout(
            rng.standard_normal((4, 8, 8)), num_steps=3
        )
        # 2x2 grid: each rank has 2 neighbours -> 8 messages per step.
        assert result.messages_sent == 8 * 3
        assert result.bytes_sent > 0

    def test_predict_step_equals_one_step_rollout(self, rng):
        config = CNNConfig(channels=(4, 4), kernel_size=3, strategy=PaddingStrategy.ZERO)
        _, models = clone_models(config, 2)
        field = rng.standard_normal((4, 8, 8))
        decomp = BlockDecomposition.from_num_ranks((8, 8), 2)
        predictor = ParallelPredictor(models, decomp)
        assert np.allclose(
            predictor.predict_step(field), predictor.rollout(field, 1).trajectory[1]
        )


class TestValidation:
    def test_inner_crop_rejected_for_rollout(self, rng):
        config = CNNConfig(
            channels=(4, 4), kernel_size=3, strategy=PaddingStrategy.INNER_CROP
        )
        _, models = clone_models(config, 2)
        decomp = BlockDecomposition.from_num_ranks((8, 8), 2)
        with pytest.raises(ConfigurationError, match="INNER_CROP"):
            ParallelPredictor(models, decomp)

    def test_model_count_mismatch_raises(self, rng):
        config = CNNConfig(channels=(4, 4), kernel_size=3, strategy=PaddingStrategy.ZERO)
        _, models = clone_models(config, 2)
        decomp = BlockDecomposition.from_num_ranks((8, 8), 4)
        with pytest.raises(ConfigurationError):
            ParallelPredictor(models, decomp)

    def test_mixed_strategies_raise(self, rng):
        a = SubdomainCNN(
            CNNConfig(channels=(4, 4), kernel_size=3, strategy=PaddingStrategy.ZERO),
            rng=np.random.default_rng(0),
        )
        b = SubdomainCNN(
            CNNConfig(channels=(4, 4), kernel_size=3, strategy=PaddingStrategy.TRANSPOSE),
            rng=np.random.default_rng(0),
        )
        decomp = BlockDecomposition.from_num_ranks((8, 8), 2)
        with pytest.raises(ConfigurationError):
            ParallelPredictor([a, b], decomp)

    def test_wrong_initial_shape_raises(self, rng):
        config = CNNConfig(channels=(4, 4), kernel_size=3, strategy=PaddingStrategy.ZERO)
        _, models = clone_models(config, 2)
        decomp = BlockDecomposition.from_num_ranks((8, 8), 2)
        predictor = ParallelPredictor(models, decomp)
        with pytest.raises(ShapeError):
            predictor.rollout(rng.standard_normal((4, 6, 6)), 1)

    def test_zero_steps_raises(self, rng):
        config = CNNConfig(channels=(4, 4), kernel_size=3, strategy=PaddingStrategy.ZERO)
        _, models = clone_models(config, 2)
        decomp = BlockDecomposition.from_num_ranks((8, 8), 2)
        with pytest.raises(ConfigurationError):
            ParallelPredictor(models, decomp).rollout(rng.standard_normal((4, 8, 8)), 0)


class TestSequentialPredictor:
    def test_matches_parallel_at_p1_neighbor_all(self, rng):
        config = CNNConfig(
            channels=(4, 4), kernel_size=3, strategy=PaddingStrategy.NEIGHBOR_ALL
        )
        reference, models = clone_models(config, 1)
        field = rng.standard_normal((4, 8, 8))
        decomp = BlockDecomposition.from_num_ranks((8, 8), 1)
        parallel = ParallelPredictor(models, decomp).rollout(field, 2)
        sequential = SequentialPredictor(reference).rollout(field, 2)
        assert np.allclose(parallel.trajectory, sequential.trajectory, atol=1e-12)

    def test_zero_strategy_rollout(self, rng):
        config = CNNConfig(channels=(4, 4), kernel_size=3, strategy=PaddingStrategy.ZERO)
        model = SubdomainCNN(config, rng=np.random.default_rng(0))
        result = SequentialPredictor(model).rollout(rng.standard_normal((4, 8, 8)), 3)
        assert result.trajectory.shape == (4, 4, 8, 8)
        assert result.messages_sent == 0

"""Recurrent-surrogate (future-work extension) tests."""

import numpy as np
import pytest

from repro.core import (
    RecurrentSurrogate,
    TrainingConfig,
    WindowDataset,
    train_recurrent,
)
from repro.data import SnapshotDataset, synthetic_advection_snapshots
from repro.exceptions import ConfigurationError, DatasetError
from repro.tensor import Tensor


@pytest.fixture
def snaps():
    return synthetic_advection_snapshots(grid_size=10, num_snapshots=12, seed=0)


class TestWindowDataset:
    def test_sample_count(self, snaps):
        ds = WindowDataset(snaps, window=3)
        assert ds.num_samples == 9

    def test_window_contents(self, snaps):
        ds = WindowDataset(snaps, window=3)
        window, target = ds[2]
        assert np.allclose(window, snaps[2:5])
        assert np.allclose(target, snaps[5])

    def test_from_dataset(self, snaps):
        ds = WindowDataset.from_dataset(SnapshotDataset(snaps), window=2)
        assert ds.num_samples == 10

    def test_batches_aligned(self, snaps):
        ds = WindowDataset(snaps, window=2)
        for windows, targets in ds.batches(4, shuffle=False, rng=None):
            assert windows.shape[1:] == (2, 4, 10, 10)
            assert targets.shape[1:] == (4, 10, 10)
            # Advection data: target is the window's last frame shifted.
            assert np.allclose(np.roll(windows[:, -1], 1, axis=-1), targets)

    def test_too_short_raises(self, snaps):
        with pytest.raises(DatasetError):
            WindowDataset(snaps[:3], window=3)

    def test_bad_window_raises(self, snaps):
        with pytest.raises(ConfigurationError):
            WindowDataset(snaps, window=0)

    def test_index_out_of_range(self, snaps):
        ds = WindowDataset(snaps, window=3)
        with pytest.raises(IndexError):
            ds[9]


class TestRecurrentSurrogate:
    def test_forward_shape(self, rng):
        model = RecurrentSurrogate(channels=4, hidden_channels=6, kernel_size=3, rng=rng)
        window = Tensor(rng.standard_normal((2, 3, 4, 8, 8)))
        assert model(window).shape == (2, 4, 8, 8)

    def test_training_reduces_loss(self, snaps):
        model = RecurrentSurrogate(channels=4, hidden_channels=8, kernel_size=3,
                                   rng=np.random.default_rng(0))
        data = WindowDataset(snaps, window=2)
        history = train_recurrent(
            model, data, TrainingConfig(epochs=10, batch_size=5, lr=0.01, loss="mse")
        )
        assert history.epoch_losses[-1] < 0.5 * history.epoch_losses[0]

    def test_rollout_shape_and_state_persistence(self, snaps, rng):
        model = RecurrentSurrogate(channels=4, hidden_channels=6, kernel_size=3, rng=rng)
        window = snaps[:3]
        rollout = model.rollout(window, num_steps=4)
        assert rollout.shape == (4, 4, 10, 10)
        assert np.all(np.isfinite(rollout))

    def test_rollout_zero_steps_raises(self, snaps, rng):
        model = RecurrentSurrogate(channels=4, hidden_channels=6, kernel_size=3, rng=rng)
        with pytest.raises(ConfigurationError):
            model.rollout(snaps[:3], num_steps=0)

    def test_parameters_registered(self, rng):
        model = RecurrentSurrogate(channels=4, hidden_channels=6, kernel_size=3, rng=rng)
        names = [n for n, _ in model.named_parameters()]
        assert any(name.startswith("cell.") for name in names)
        assert any(name.startswith("head.") for name in names)

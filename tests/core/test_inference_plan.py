"""InferencePlan equivalence and allocation-freedom.

The acceptance bar for the workspace/fusion layer: a compiled plan must
be bit-identical to the module-by-module forward for every padding
strategy, must stop allocating after its warmup run (pinned through the
perf-counter registry), and must leave MPI rollouts unchanged on both
execution backends.
"""

import numpy as np
import pytest

from repro.core import (
    CNNConfig,
    InferencePlan,
    PaddingStrategy,
    ParallelPredictor,
    SubdomainCNN,
)
from repro.domain import BlockDecomposition
from repro.exceptions import ConfigurationError, ShapeError
from repro.nn import Conv2d, LeakyReLU, Module, Sequential
from repro.tensor import Tensor, no_grad, perf

STRATEGIES = [
    PaddingStrategy.ZERO,
    PaddingStrategy.NEIGHBOR_FIRST,
    PaddingStrategy.NEIGHBOR_ALL,
    PaddingStrategy.TRANSPOSE,
]


def make_model(strategy, seed=0, channels=(4, 6, 4)):
    config = CNNConfig(channels=channels, kernel_size=3, strategy=strategy)
    return SubdomainCNN(config, rng=np.random.default_rng(seed))


def model_forward(model, x):
    with no_grad():
        return model(Tensor(x)).numpy()


class TestPlanEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.value)
    def test_bit_identical_to_module_forward(self, rng, strategy):
        model = make_model(strategy)
        plan = InferencePlan(model)
        halo = model.input_halo
        x = rng.standard_normal((2, 4, 10 + 2 * halo, 10 + 2 * halo))
        expected = model_forward(model, x)
        # Cold, warm, and hot runs must all match exactly.
        for _ in range(3):
            assert np.array_equal(plan.run(x), expected)

    def test_sees_in_place_weight_updates(self, rng):
        """Plans hold references to parameter storage, so an optimizer
        stepping the model in place must be visible without recompiling."""
        model = make_model(PaddingStrategy.ZERO)
        plan = InferencePlan(model)
        x = rng.standard_normal((1, 4, 8, 8))
        plan.run(x)  # warmup with old weights
        for param in model.parameters():
            param.data += 0.25
        assert np.array_equal(plan.run(x), model_forward(model, x))

    def test_input_not_mutated(self, rng):
        model = make_model(PaddingStrategy.ZERO)
        plan = InferencePlan(model)
        x = rng.standard_normal((1, 4, 8, 8))
        original = x.copy()
        plan.run(x)
        plan.run(x)
        assert np.array_equal(x, original)

    def test_out_parameter(self, rng):
        model = make_model(PaddingStrategy.ZERO)
        plan = InferencePlan(model)
        x = rng.standard_normal((1, 4, 8, 8))
        expected = plan.run(x)
        out = np.empty_like(expected)
        returned = plan.run(x, out=out)
        assert returned is out
        assert np.array_equal(out, expected)

    def test_result_detached_from_arena(self, rng):
        """run() results must survive the next run() (copied out, not a
        view of recycled arena storage)."""
        model = make_model(PaddingStrategy.ZERO)
        plan = InferencePlan(model)
        a_in = rng.standard_normal((1, 4, 8, 8))
        b_in = rng.standard_normal((1, 4, 8, 8))
        a = plan.run(a_in)
        a_snapshot = a.copy()
        plan.run(b_in)
        assert np.array_equal(a, a_snapshot)

    def test_callable_alias(self, rng):
        model = make_model(PaddingStrategy.ZERO)
        plan = InferencePlan(model)
        x = rng.standard_normal((1, 4, 8, 8))
        assert np.array_equal(plan(x), plan.run(x))

    def test_wrong_rank_raises(self, rng):
        plan = InferencePlan(make_model(PaddingStrategy.ZERO))
        with pytest.raises(ShapeError):
            plan.run(rng.standard_normal((4, 8, 8)))


class TestAllocationFreedom:
    def test_zero_new_buffers_after_warmup(self, rng):
        """The tentpole property, asserted through the perf-counter
        registry: after the warmup run every workspace request is a hit,
        so the registry records reused bytes and zero allocated bytes."""
        model = make_model(PaddingStrategy.TRANSPOSE)  # conv + tconv steps
        plan = InferencePlan(model)
        x = rng.standard_normal((1, 4, 12, 12))
        plan.run(x)  # warmup
        created = plan.workspace.stats.buffers_created
        perf.reset()
        with perf.collecting():
            for _ in range(3):
                plan.run(x)
        counters = perf.snapshot()
        perf.reset()
        assert plan.workspace.stats.buffers_created == created
        assert counters["workspace"].bytes_allocated == 0
        assert counters["workspace"].bytes_reused > 0
        assert counters["plan.run"].calls == 3

    def test_warm_arena_is_fully_hit(self, rng):
        model = make_model(PaddingStrategy.NEIGHBOR_ALL)
        plan = InferencePlan(model)
        halo = model.input_halo
        x = rng.standard_normal((1, 4, 8 + 2 * halo, 8 + 2 * halo))
        plan.run(x)
        before = plan.workspace.stats
        requests, created = before.requests, before.buffers_created
        plan.run(x)
        after = plan.workspace.stats
        assert after.buffers_created == created
        assert after.requests > requests  # warm requests did happen


class TestCompilation:
    def test_fuses_conv_leaky_pairs(self):
        model = make_model(PaddingStrategy.ZERO, channels=(4, 6, 4))
        # 2 conv layers, each followed by LeakyReLU (last layer has no
        # activation only when the config says so — check actual count).
        plan = InferencePlan(model)
        flat = InferencePlan._flatten(model)
        fused = sum(1 for s in plan.steps if getattr(s, "slope", None) is not None)
        assert len(plan.steps) < len(flat)
        assert fused >= 1

    def test_try_compile_unsupported_returns_none(self):
        class Exotic(Module):
            def forward(self, x):  # pragma: no cover - never run
                return x

        assert InferencePlan.try_compile(Exotic()) is None
        assert InferencePlan.try_compile(Sequential()) is None

    def test_compile_unsupported_raises(self):
        class Exotic(Module):
            def forward(self, x):  # pragma: no cover - never run
                return x

        with pytest.raises(ConfigurationError):
            InferencePlan(Sequential(Conv2d(2, 2, 3), Exotic()))

    def test_plain_sequential_supported(self, rng):
        model = Sequential(
            Conv2d(2, 3, 3, padding=1, rng=np.random.default_rng(0)),
            LeakyReLU(0.1),
            Conv2d(3, 2, 3, padding=1, rng=np.random.default_rng(1)),
        )
        plan = InferencePlan(model)
        x = rng.standard_normal((1, 2, 6, 6))
        assert np.array_equal(plan.run(x), model_forward(model, x))

    def test_leading_leaky_relu_copies_input(self, rng):
        """A LeakyReLU that is the first step must not mutate the
        caller's array (the in-place step copies into the arena)."""
        model = Sequential(LeakyReLU(0.1), Conv2d(2, 2, 3, padding=1))
        plan = InferencePlan(model)
        x = rng.standard_normal((1, 2, 6, 6))
        original = x.copy()
        assert np.array_equal(plan.run(x), model_forward(model, x))
        assert np.array_equal(x, original)

    def test_state_dict_unchanged_by_compilation(self):
        model = make_model(PaddingStrategy.ZERO)
        keys_before = sorted(model.state_dict())
        InferencePlan(model)
        assert sorted(model.state_dict()) == keys_before


class TestRolloutEquivalence:
    """Seeded multi-step MPI rollout: plans must change nothing."""

    def clone_models(self, config, num, seed=7):
        reference = SubdomainCNN(config, rng=np.random.default_rng(seed))
        models = []
        for _ in range(num):
            model = SubdomainCNN(config, rng=np.random.default_rng(99))
            model.load_state_dict(reference.state_dict())
            models.append(model)
        return models

    @pytest.mark.parametrize("execution", ["threads", "processes"])
    @pytest.mark.parametrize(
        "strategy",
        [PaddingStrategy.ZERO, PaddingStrategy.NEIGHBOR_FIRST],
        ids=lambda s: s.value,
    )
    def test_plan_rollout_matches_naive(self, rng, strategy, execution):
        config = CNNConfig(channels=(4, 5, 4), kernel_size=3, strategy=strategy)
        models = self.clone_models(config, 4)
        decomp = BlockDecomposition.from_num_ranks((16, 16), 4)
        field = rng.standard_normal((4, 16, 16))

        naive = ParallelPredictor(models, decomp, use_plan=False)
        planned = ParallelPredictor(models, decomp, use_plan=True)
        expected = naive.rollout(field, num_steps=3, execution=execution)
        got = planned.rollout(field, num_steps=3, execution=execution)

        assert np.array_equal(got.trajectory, expected.trajectory)
        assert got.messages_sent == expected.messages_sent
        assert got.bytes_sent == expected.bytes_sent

    def test_predict_step_matches_rollout(self, rng):
        config = CNNConfig(channels=(4, 4), kernel_size=3, strategy=PaddingStrategy.ZERO)
        models = self.clone_models(config, 2)
        decomp = BlockDecomposition.from_num_ranks((12, 12), 2)
        field = rng.standard_normal((4, 12, 12))
        predictor = ParallelPredictor(models, decomp)
        step = predictor.predict_step(field)
        assert np.array_equal(
            step, predictor.rollout(field, num_steps=1).trajectory[1]
        )

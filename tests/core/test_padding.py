"""Padding-strategy accounting tests."""

import pytest

from repro.core import PaddingStrategy, parse_strategy
from repro.exceptions import ConfigurationError

K, L = 5, 4  # paper kernel size / layer count


class TestHaloAccounting:
    def test_zero_strategy_needs_nothing(self):
        assert PaddingStrategy.ZERO.input_halo(K, L) == 0
        assert PaddingStrategy.ZERO.output_crop(K, L) == 0

    def test_neighbor_first_covers_one_layer(self):
        """Paper Sec. III: the input is enlarged so the *first* layer's
        output matches the target: halo = (k-1)/2 = 2."""
        assert PaddingStrategy.NEIGHBOR_FIRST.input_halo(K, L) == 2
        assert PaddingStrategy.NEIGHBOR_FIRST.output_crop(K, L) == 0

    def test_neighbor_all_covers_whole_stack(self):
        """All-valid variant: halo = L * (k-1)/2 = 8."""
        assert PaddingStrategy.NEIGHBOR_ALL.input_halo(K, L) == 8
        assert PaddingStrategy.NEIGHBOR_ALL.output_crop(K, L) == 0

    def test_inner_crop_loses_interface_lines(self):
        """Option 3: compare only the inner (N-k+1) points per layer."""
        assert PaddingStrategy.INNER_CROP.input_halo(K, L) == 0
        assert PaddingStrategy.INNER_CROP.output_crop(K, L) == 8

    def test_transpose_is_size_preserving(self):
        assert PaddingStrategy.TRANSPOSE.input_halo(K, L) == 0
        assert PaddingStrategy.TRANSPOSE.output_crop(K, L) == 0

    def test_other_kernel_sizes(self):
        assert PaddingStrategy.NEIGHBOR_FIRST.input_halo(3, 4) == 1
        assert PaddingStrategy.NEIGHBOR_ALL.input_halo(3, 2) == 2


class TestCommunicationRequirement:
    def test_neighbour_strategies_need_halo_exchange(self):
        assert PaddingStrategy.NEIGHBOR_FIRST.uses_neighbour_data
        assert PaddingStrategy.NEIGHBOR_ALL.uses_neighbour_data

    def test_local_strategies_do_not(self):
        assert not PaddingStrategy.ZERO.uses_neighbour_data
        assert not PaddingStrategy.INNER_CROP.uses_neighbour_data
        assert not PaddingStrategy.TRANSPOSE.uses_neighbour_data


class TestParse:
    def test_from_string(self):
        assert parse_strategy("zero") is PaddingStrategy.ZERO
        assert parse_strategy("neighbor_first") is PaddingStrategy.NEIGHBOR_FIRST

    def test_passthrough(self):
        assert parse_strategy(PaddingStrategy.TRANSPOSE) is PaddingStrategy.TRANSPOSE

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            parse_strategy("mirror")

    def test_descriptions_exist(self):
        for strategy in PaddingStrategy:
            assert strategy.description

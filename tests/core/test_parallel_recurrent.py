"""Parallel ConvLSTM surrogate tests (scheme generality check)."""

import numpy as np
import pytest

from repro.core import TrainingConfig, train_parallel_recurrent
from repro.data import SnapshotDataset, synthetic_advection_snapshots
from repro.exceptions import ConfigurationError, ShapeError


@pytest.fixture
def dataset():
    return SnapshotDataset(
        synthetic_advection_snapshots(grid_size=12, num_snapshots=10, seed=0)
    )


def fast_config(epochs=2):
    return TrainingConfig(epochs=epochs, batch_size=4, lr=0.01, loss="mse", seed=0)


class TestTraining:
    def test_one_surrogate_per_rank(self, dataset):
        result = train_parallel_recurrent(
            dataset, num_ranks=4, window=2, hidden_channels=4, kernel_size=3,
            training_config=fast_config(),
        )
        assert len(result.rank_results) == 4
        assert result.max_train_time > 0

    def test_threads_equals_serial(self, dataset):
        """Communication-free: execution mode cannot change weights."""
        kwargs = dict(
            num_ranks=2, window=2, hidden_channels=4, kernel_size=3,
            training_config=fast_config(), seed=0,
        )
        threaded = train_parallel_recurrent(dataset, execution="threads", **kwargs)
        serial = train_parallel_recurrent(dataset, execution="serial", **kwargs)
        for a, b in zip(threaded.rank_results, serial.rank_results):
            for name in a.state_dict:
                assert np.array_equal(a.state_dict[name], b.state_dict[name])

    def test_loss_decreases(self, dataset):
        result = train_parallel_recurrent(
            dataset, num_ranks=2, window=2, hidden_channels=6, kernel_size=3,
            training_config=fast_config(epochs=8),
        )
        for rank_result in result.rank_results:
            losses = rank_result.history.epoch_losses
            assert losses[-1] < losses[0]

    def test_invalid_execution_raises(self, dataset):
        with pytest.raises(ConfigurationError):
            train_parallel_recurrent(
                dataset, num_ranks=2, training_config=fast_config(), execution="mpi"
            )

    def test_invalid_rank_count_raises(self, dataset):
        with pytest.raises(ConfigurationError):
            train_parallel_recurrent(dataset, num_ranks=0)


class TestRollout:
    def test_global_rollout_shape(self, dataset):
        result = train_parallel_recurrent(
            dataset, num_ranks=4, window=2, hidden_channels=4, kernel_size=3,
            training_config=fast_config(),
        )
        window = dataset.snapshots[:2]
        rollout = result.rollout(window, num_steps=3)
        assert rollout.shape == (3, 4, 12, 12)
        assert np.all(np.isfinite(rollout))

    def test_wrong_window_length_raises(self, dataset):
        result = train_parallel_recurrent(
            dataset, num_ranks=2, window=3, hidden_channels=4, kernel_size=3,
            training_config=fast_config(),
        )
        with pytest.raises(ShapeError):
            result.rollout(dataset.snapshots[:2], num_steps=1)

    def test_build_models_roundtrip(self, dataset):
        result = train_parallel_recurrent(
            dataset, num_ranks=2, window=2, hidden_channels=4, kernel_size=3,
            training_config=fast_config(),
        )
        models = result.build_models()
        for model, rank_result in zip(models, result.rank_results):
            for name, value in model.state_dict().items():
                assert np.array_equal(value, rank_result.state_dict[name])

"""SubdomainCNN tests — including the Table-I architecture contract."""

import numpy as np
import pytest

from repro.core import (
    PAPER_CHANNELS,
    CNNConfig,
    PaddingStrategy,
    SubdomainCNN,
    build_paper_cnn,
)
from repro.exceptions import ConfigurationError
from repro.nn import Conv2d, ConvTranspose2d, LeakyReLU
from repro.tensor import Tensor


class TestTable1Architecture:
    """Verify the constructed network against Table I of the paper."""

    def test_channel_progression(self, rng):
        model = build_paper_cnn(rng=rng)
        convs = [m for m in model.layers if isinstance(m, Conv2d)]
        assert [(c.in_channels, c.out_channels) for c in convs] == [
            (4, 6),
            (6, 16),
            (16, 6),
            (6, 4),
        ]

    def test_kernel_sizes_5x5(self, rng):
        model = build_paper_cnn(rng=rng)
        for conv in (m for m in model.layers if isinstance(m, Conv2d)):
            assert conv.kernel_size == 5
            assert conv.weight.shape[-2:] == (5, 5)

    def test_four_layers(self, rng):
        model = build_paper_cnn(rng=rng)
        assert sum(isinstance(m, Conv2d) for m in model.layers) == 4

    def test_leaky_relu_between_layers_with_paper_epsilon(self, rng):
        model = build_paper_cnn(rng=rng)
        relus = [m for m in model.layers if isinstance(m, LeakyReLU)]
        assert len(relus) == 3  # between layers, none after the head
        assert all(r.negative_slope == 0.01 for r in relus)

    def test_four_channels_in_and_out(self, rng):
        assert PAPER_CHANNELS == (4, 6, 16, 6, 4)
        model = build_paper_cnn(PaddingStrategy.ZERO, rng=rng)
        out = model(Tensor(rng.standard_normal((1, 4, 16, 16))))
        assert out.shape[1] == 4


class TestShapeContracts:
    @pytest.mark.parametrize(
        "strategy, in_extra, out_deficit",
        [
            (PaddingStrategy.ZERO, 0, 0),
            (PaddingStrategy.NEIGHBOR_FIRST, 4, 0),
            (PaddingStrategy.NEIGHBOR_ALL, 16, 0),
            (PaddingStrategy.INNER_CROP, 0, 16),
            (PaddingStrategy.TRANSPOSE, 0, 0),
        ],
    )
    def test_output_size_per_strategy(self, rng, strategy, in_extra, out_deficit):
        model = build_paper_cnn(strategy, rng=rng)
        h = w = 20
        x = Tensor(rng.standard_normal((2, 4, h + in_extra, w + in_extra)))
        out = model(x)
        assert out.shape == (2, 4, h - out_deficit, w - out_deficit)

    def test_halo_matches_strategy(self, rng):
        assert build_paper_cnn(PaddingStrategy.NEIGHBOR_FIRST, rng=rng).input_halo == 2
        assert build_paper_cnn(PaddingStrategy.NEIGHBOR_ALL, rng=rng).input_halo == 8
        assert build_paper_cnn(PaddingStrategy.ZERO, rng=rng).input_halo == 0

    def test_expected_output_shape_helper(self, rng):
        model = build_paper_cnn(PaddingStrategy.INNER_CROP, rng=rng)
        assert model.expected_output_shape((40, 40)) == (24, 24)

    def test_transpose_strategy_has_deconv_layer(self, rng):
        model = build_paper_cnn(PaddingStrategy.TRANSPOSE, rng=rng)
        assert any(isinstance(m, ConvTranspose2d) for m in model.layers)


class TestDeterminism:
    def test_same_seed_same_weights(self):
        a = SubdomainCNN(CNNConfig(), rng=np.random.default_rng(7))
        b = SubdomainCNN(CNNConfig(), rng=np.random.default_rng(7))
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb
            assert np.array_equal(pa.data, pb.data)

    def test_different_seeds_differ(self):
        a = SubdomainCNN(CNNConfig(), rng=np.random.default_rng(1))
        b = SubdomainCNN(CNNConfig(), rng=np.random.default_rng(2))
        assert not np.array_equal(
            a.layers[0].weight.data, b.layers[0].weight.data
        )

    def test_state_dict_roundtrip(self, rng):
        a = SubdomainCNN(CNNConfig(), rng=rng)
        b = SubdomainCNN(CNNConfig(), rng=np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        x = Tensor(np.random.default_rng(0).standard_normal((1, 4, 12, 12)))
        assert np.allclose(a(x).numpy(), b(x).numpy())


class TestConfigValidation:
    def test_even_kernel_raises(self):
        with pytest.raises(ConfigurationError):
            CNNConfig(kernel_size=4)

    def test_too_few_channels_raise(self):
        with pytest.raises(ConfigurationError):
            CNNConfig(channels=(4,))

    def test_custom_channels(self, rng):
        model = SubdomainCNN(CNNConfig(channels=(4, 8, 4), kernel_size=3), rng=rng)
        x = Tensor(rng.standard_normal((1, 4, 10 + 2, 10 + 2)))
        assert model(x).shape == (1, 4, 10, 10)

    def test_build_paper_cnn_overrides(self, rng):
        model = build_paper_cnn("zero", rng=rng, negative_slope=0.2)
        relus = [m for m in model.layers if isinstance(m, LeakyReLU)]
        assert all(r.negative_slope == 0.2 for r in relus)

"""Golden equivalence across execution backends.

The paper's scheme is communication-free, so *where* a rank runs —
in-process thread, separate OS process, or serially in the caller —
must not change a single bit of the result.  Per-rank seeding is
derived from ``seed + rank`` before any backend dispatch, which is what
makes this hold; these tests are the regression gate for that property.
"""

import numpy as np

from repro.core import (
    CNNConfig,
    ParallelTrainer,
    TrainingConfig,
    train_parallel_recurrent,
)
from repro.data import SnapshotDataset, synthetic_advection_snapshots


def small_setup(epochs=2):
    snaps = synthetic_advection_snapshots(grid_size=16, num_snapshots=8, seed=0)
    dataset = SnapshotDataset(snaps)
    cnn = CNNConfig(channels=(4, 6, 4), kernel_size=3)
    training = TrainingConfig(epochs=epochs, batch_size=4, lr=0.01, loss="mse", seed=0)
    return dataset, cnn, training


class TestParallelTrainerEquivalence:
    def test_all_backends_bit_identical(self):
        """Serial is the reference; threads and processes must match it
        exactly — losses and every weight, bit for bit."""
        dataset, cnn, training = small_setup()
        results = {}
        for mode in ("serial", "threads", "processes"):
            trainer = ParallelTrainer(cnn, training, num_ranks=2, seed=0)
            results[mode] = trainer.train(dataset, execution=mode)

        reference = results["serial"]
        for mode in ("threads", "processes"):
            candidate = results[mode]
            assert candidate.final_losses == reference.final_losses
            for rank in range(2):
                state_ref = reference.rank_results[rank].state_dict
                state_got = candidate.rank_results[rank].state_dict
                assert set(state_got) == set(state_ref)
                for name in state_ref:
                    assert np.array_equal(state_got[name], state_ref[name]), (
                        f"{mode} diverged from serial at rank {rank}, {name}"
                    )

    def test_wall_time_recorded_for_every_backend(self):
        dataset, cnn, training = small_setup(epochs=1)
        for mode in ("serial", "threads", "processes"):
            result = ParallelTrainer(cnn, training, num_ranks=2).train(
                dataset, execution=mode
            )
            assert result.wall_time > 0.0
            # The region wall-clock includes launch/teardown, so it can
            # never undercut the slowest rank's in-rank training time
            # under concurrent execution; serial sums the ranks instead.
            if mode != "serial":
                assert result.wall_time >= result.max_train_time


class TestRecurrentEquivalence:
    def test_processes_match_serial(self):
        dataset = SnapshotDataset(
            synthetic_advection_snapshots(grid_size=12, num_snapshots=6, seed=0)
        )
        kwargs = dict(
            num_ranks=2,
            window=2,
            hidden_channels=4,
            kernel_size=3,
            training_config=TrainingConfig(
                epochs=1, batch_size=4, lr=0.01, loss="mse", seed=0
            ),
            seed=0,
        )
        serial = train_parallel_recurrent(dataset, execution="serial", **kwargs)
        processes = train_parallel_recurrent(dataset, execution="processes", **kwargs)
        for a, b in zip(serial.rank_results, processes.rank_results):
            for name in a.state_dict:
                assert np.array_equal(a.state_dict[name], b.state_dict[name])

"""Per-rank training-data assembly tests."""

import numpy as np
import pytest

from repro.core import build_rank_dataset
from repro.data import SnapshotDataset
from repro.domain import BlockDecomposition
from repro.exceptions import DatasetError


def make_dataset(t=6, c=4, n=8):
    snaps = np.arange(t * c * n * n, dtype=float).reshape(t, c, n, n)
    return SnapshotDataset(snaps)


class TestBuildRankDataset:
    def test_inputs_carry_halo_targets_do_not(self):
        ds = make_dataset()
        decomp = BlockDecomposition((8, 8), (2, 2))
        rank_data = build_rank_dataset(ds, decomp, rank=0, halo=2)
        assert rank_data.inputs.shape == (5, 4, 8, 8)
        assert rank_data.targets.shape == (5, 4, 4, 4)

    def test_pairs_offset_by_one_step(self):
        ds = make_dataset()
        decomp = BlockDecomposition((8, 8), (2, 2))
        rank_data = build_rank_dataset(ds, decomp, rank=3, halo=0)
        sub = decomp.subdomain(3)
        assert np.allclose(rank_data.inputs[0], ds.snapshots[0][:, sub.y_slice, sub.x_slice])
        assert np.allclose(rank_data.targets[0], ds.snapshots[1][:, sub.y_slice, sub.x_slice])

    def test_crop_shrinks_targets(self):
        ds = make_dataset(n=12)
        decomp = BlockDecomposition((12, 12), (2, 2))
        rank_data = build_rank_dataset(ds, decomp, rank=0, halo=0, crop=2)
        assert rank_data.targets.shape == (5, 4, 2, 2)
        assert rank_data.inputs.shape == (5, 4, 6, 6)

    def test_crop_too_large_raises(self):
        ds = make_dataset(n=8)
        decomp = BlockDecomposition((8, 8), (2, 2))
        with pytest.raises(DatasetError):
            build_rank_dataset(ds, decomp, rank=0, halo=0, crop=2)

    def test_halo_content_matches_decomposition_extract(self, rng):
        snaps = rng.standard_normal((5, 4, 10, 10))
        ds = SnapshotDataset(snaps)
        decomp = BlockDecomposition((10, 10), (2, 2))
        rank_data = build_rank_dataset(ds, decomp, rank=1, halo=1, fill="edge")
        expected = decomp.extract(snaps[:-1], 1, halo=1, fill="edge")
        assert np.allclose(rank_data.inputs, expected)

    def test_arrays_are_owned_copies(self):
        ds = make_dataset()
        decomp = BlockDecomposition((8, 8), (2, 2))
        rank_data = build_rank_dataset(ds, decomp, rank=0, halo=0)
        rank_data.inputs[0, 0, 0, 0] = -1.0
        assert ds.snapshots[0, 0, 0, 0] != -1.0


class TestRankDatasetBatches:
    def test_batches_cover_all(self):
        ds = make_dataset(t=9)
        decomp = BlockDecomposition((8, 8), (1, 1))
        rank_data = build_rank_dataset(ds, decomp, rank=0, halo=0)
        total = sum(x.shape[0] for x, _ in rank_data.batches(3, False, None))
        assert total == rank_data.num_samples == 8

    def test_shuffle_requires_rng(self):
        ds = make_dataset()
        decomp = BlockDecomposition((8, 8), (1, 1))
        rank_data = build_rank_dataset(ds, decomp, rank=0, halo=0)
        with pytest.raises(DatasetError):
            list(rank_data.batches(2, True, None))

    def test_mismatched_sample_count_raises(self):
        from repro.core import RankDataset

        with pytest.raises(DatasetError):
            RankDataset(
                rank=0,
                inputs=np.zeros((3, 4, 4, 4)),
                targets=np.zeros((2, 4, 4, 4)),
                halo=0,
                crop=0,
            )

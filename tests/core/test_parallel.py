"""Parallel-trainer tests: the paper's scheme end to end."""

import numpy as np
import pytest

from repro.core import (
    CNNConfig,
    PaddingStrategy,
    ParallelTrainer,
    TrainingConfig,
    train_sequential_baseline,
)
from repro.data import SnapshotDataset, synthetic_advection_snapshots
from repro.exceptions import ConfigurationError


def small_setup(strategy=PaddingStrategy.NEIGHBOR_FIRST, epochs=2):
    snaps = synthetic_advection_snapshots(grid_size=16, num_snapshots=8, seed=0)
    dataset = SnapshotDataset(snaps)
    cnn = CNNConfig(channels=(4, 6, 4), kernel_size=3, strategy=strategy)
    training = TrainingConfig(epochs=epochs, batch_size=4, lr=0.01, loss="mse", seed=0)
    return dataset, cnn, training


class TestExecutionModes:
    def test_threads_and_serial_produce_identical_weights(self):
        """Training is communication-free, so the execution mode cannot
        change the result — a key invariant of the paper's scheme."""
        dataset, cnn, training = small_setup()
        results = {}
        for mode in ("threads", "serial"):
            trainer = ParallelTrainer(cnn, training, num_ranks=4, seed=0)
            results[mode] = trainer.train(dataset, execution=mode)
        for rank in range(4):
            state_t = results["threads"].rank_results[rank].state_dict
            state_s = results["serial"].rank_results[rank].state_dict
            for name in state_t:
                assert np.array_equal(state_t[name], state_s[name])

    def test_unknown_mode_raises(self):
        dataset, cnn, training = small_setup()
        with pytest.raises(ConfigurationError):
            ParallelTrainer(cnn, training, num_ranks=2).train(dataset, execution="mpi")


class TestResults:
    def test_one_result_per_rank_in_order(self):
        dataset, cnn, training = small_setup()
        result = ParallelTrainer(cnn, training, num_ranks=4).train(dataset)
        assert result.num_ranks == 4
        assert [r.rank for r in result.rank_results] == [0, 1, 2, 3]

    def test_subdomains_partition_grid(self):
        dataset, cnn, training = small_setup()
        result = ParallelTrainer(cnn, training, num_ranks=4).train(dataset)
        cover = np.zeros((16, 16), dtype=int)
        for rank_result in result.rank_results:
            sub = rank_result.subdomain
            cover[sub.y_slice, sub.x_slice] += 1
        assert np.all(cover == 1)

    def test_times_and_losses_recorded(self):
        dataset, cnn, training = small_setup()
        result = ParallelTrainer(cnn, training, num_ranks=2).train(dataset)
        assert result.max_train_time > 0
        assert result.mean_train_time <= result.max_train_time + 1e-12
        assert len(result.final_losses) == 2
        assert all(np.isfinite(l) for l in result.final_losses)

    def test_build_models_reproduces_trained_weights(self):
        dataset, cnn, training = small_setup()
        result = ParallelTrainer(cnn, training, num_ranks=2).train(dataset)
        models = result.build_models()
        for model, rank_result in zip(models, result.rank_results):
            for name, value in model.state_dict().items():
                assert np.array_equal(value, rank_result.state_dict[name])

    def test_ranks_have_different_initial_seeds(self):
        """Each rank seeds its own network: rank nets must differ."""
        dataset, cnn, training = small_setup(epochs=1)
        result = ParallelTrainer(cnn, training, num_ranks=2).train(dataset)
        a = result.rank_results[0].state_dict
        b = result.rank_results[1].state_dict
        assert any(not np.array_equal(a[k], b[k]) for k in a)

    def test_explicit_pgrid(self):
        dataset, cnn, training = small_setup()
        trainer = ParallelTrainer(cnn, training, num_ranks=4, pgrid=(4, 1))
        result = trainer.train(dataset)
        assert result.decomposition.pgrid == (4, 1)

    def test_training_loss_decreases_per_rank(self):
        dataset, cnn, training = small_setup(epochs=10)
        result = ParallelTrainer(cnn, training, num_ranks=4).train(dataset)
        for rank_result in result.rank_results:
            losses = rank_result.history.epoch_losses
            assert losses[-1] < losses[0]


class TestSequentialBaseline:
    def test_is_parallel_scheme_at_p1(self):
        dataset, cnn, training = small_setup()
        baseline = train_sequential_baseline(dataset, cnn, training, seed=0)
        direct = ParallelTrainer(cnn, training, num_ranks=1, seed=0).train(
            dataset, execution="serial"
        )
        state_a = baseline.rank_results[0].state_dict
        state_b = direct.rank_results[0].state_dict
        for name in state_a:
            assert np.array_equal(state_a[name], state_b[name])

    def test_single_subdomain_covers_domain(self):
        dataset, cnn, training = small_setup()
        baseline = train_sequential_baseline(dataset, cnn, training)
        sub = baseline.rank_results[0].subdomain
        assert sub.shape == (16, 16)


class TestValidation:
    def test_bad_rank_count_raises(self):
        with pytest.raises(ConfigurationError):
            ParallelTrainer(num_ranks=0)

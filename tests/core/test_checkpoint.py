"""Checkpoint save/load tests."""

import numpy as np
import pytest

from repro.core import (
    CNNConfig,
    PaddingStrategy,
    ParallelPredictor,
    ParallelTrainer,
    SubdomainCNN,
    TrainingConfig,
    load_checkpoint,
    load_checkpoint_precision,
    load_parallel_models,
    save_checkpoint,
    save_parallel_models,
)
from repro.core.engine import build_optimizer
from repro.data import SnapshotDataset, synthetic_advection_snapshots
from repro.exceptions import DatasetError
from repro.tensor import precision, set_precision


@pytest.fixture
def trained_result():
    dataset = SnapshotDataset(synthetic_advection_snapshots(grid_size=12, num_snapshots=6, seed=0))
    trainer = ParallelTrainer(
        CNNConfig(channels=(4, 6, 4), kernel_size=3, strategy=PaddingStrategy.NEIGHBOR_FIRST),
        TrainingConfig(epochs=1, batch_size=4, lr=0.01, loss="mse"),
        num_ranks=4,
    )
    return trainer.train(dataset, execution="serial")


class TestRoundtrip:
    def test_models_identical_after_reload(self, tmp_path, trained_result):
        path = tmp_path / "models.npz"
        save_parallel_models(path, trained_result)
        models, decomposition, config = load_parallel_models(path)
        assert len(models) == 4
        assert decomposition.pgrid == trained_result.decomposition.pgrid
        assert config.strategy is PaddingStrategy.NEIGHBOR_FIRST
        for model, rank_result in zip(models, trained_result.rank_results):
            for name, value in model.state_dict().items():
                assert np.array_equal(value, rank_result.state_dict[name])

    def test_reloaded_models_predict_identically(self, tmp_path, trained_result, rng):
        path = tmp_path / "models.npz"
        save_parallel_models(path, trained_result)
        models, decomposition, _ = load_parallel_models(path)

        field = rng.standard_normal((4, 12, 12))
        original = ParallelPredictor(
            trained_result.build_models(), trained_result.decomposition
        ).rollout(field, 2)
        reloaded = ParallelPredictor(models, decomposition).rollout(field, 2)
        assert np.allclose(original.trajectory, reloaded.trajectory)

    def test_config_fields_preserved(self, tmp_path, trained_result):
        path = tmp_path / "models.npz"
        save_parallel_models(path, trained_result)
        _, _, config = load_parallel_models(path)
        assert config.channels == (4, 6, 4)
        assert config.kernel_size == 3
        assert config.negative_slope == trained_result.cnn_config.negative_slope


class TestValidation:
    def test_non_checkpoint_raises(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(DatasetError):
            load_parallel_models(path)


class TestPrecisionMetadata:
    @pytest.fixture(autouse=True)
    def _restore_precision(self):
        yield
        set_precision("float64")

    def test_default_records_float64(self, tmp_path, trained_result):
        path = tmp_path / "models.npz"
        save_parallel_models(path, trained_result)
        assert load_checkpoint_precision(path) == "float64"

    def test_active_policy_recorded(self, tmp_path, trained_result):
        path = tmp_path / "models.npz"
        with precision("float32"):
            save_parallel_models(path, trained_result)
        assert load_checkpoint_precision(path) == "float32"

    def test_explicit_precision_wins(self, tmp_path, trained_result):
        path = tmp_path / "models.npz"
        save_parallel_models(path, trained_result, precision="float32")
        assert load_checkpoint_precision(path) == "float32"

    def test_float32_checkpoint_reloads_float32_parameters(self, tmp_path):
        """A float32-trained checkpoint must come back with float32
        parameter storage even when the loading process is still in the
        default float64 mode — the recorded precision drives the
        rebuild."""
        dataset = SnapshotDataset(
            synthetic_advection_snapshots(grid_size=12, num_snapshots=6, seed=0)
        )
        path = tmp_path / "models.npz"
        with precision("float32"):
            result = ParallelTrainer(
                CNNConfig(channels=(4, 6, 4), kernel_size=3),
                TrainingConfig(epochs=1, batch_size=4, lr=0.01, loss="mse"),
                num_ranks=4,
            ).train(dataset, execution="serial")
            save_parallel_models(path, result)
        models, _, _ = load_parallel_models(path)
        for model in models:
            assert all(p.dtype == np.float32 for p in model.parameters())

    def test_load_precision_override(self, tmp_path, trained_result):
        path = tmp_path / "models.npz"
        save_parallel_models(path, trained_result)  # float64 checkpoint
        models, _, _ = load_parallel_models(path, precision="float32")
        for model in models:
            assert all(p.dtype == np.float32 for p in model.parameters())

    def test_training_checkpoint_records_precision(self, tmp_path):
        with precision("float32"):
            model, cnn_config = small_model()
            config = TrainingConfig(epochs=1, batch_size=4, loss="mse")
            path = tmp_path / "ckpt.npz"
            save_checkpoint(path, model, config, model_config=cnn_config)
        assert load_checkpoint(path).precision == "float32"


class TestFloat32RoundTrip:
    """Train → save → load → rollout entirely in float32 on the paper's
    euler-gaussian scenario, on both execution backends.

    Documented tolerance: one epoch of Adam in float32 drifts from the
    float64 trajectory by well under 1% relative L2 at this scale, so
    the rollout comparison uses ``rtol=0.05`` — loose enough to absorb
    optimizer-path divergence, tight enough to catch any dtype mix-up
    (a float64 leak mid-graph changes results at the 1e-7 level but a
    *wrong* computation changes them at the 1e-1 level).
    """

    @pytest.fixture(autouse=True)
    def _restore_precision(self):
        yield
        set_precision("float64")

    def _train_rollout(self, tmp_path, execution, mode):
        from repro.data import generate_scenario_dataset

        produced = generate_scenario_dataset(
            "euler-gaussian", grid_size=16, num_snapshots=6, num_train=4
        )
        dataset = SnapshotDataset(produced.full_snapshots)
        path = tmp_path / f"models-{mode}-{execution}.npz"
        with precision(mode):
            result = ParallelTrainer(
                CNNConfig(channels=(4, 6, 4), kernel_size=3),
                TrainingConfig(epochs=1, batch_size=4, lr=0.01, loss="mse", seed=0),
                num_ranks=4,
                seed=0,
            ).train(dataset, execution=execution)
            save_parallel_models(path, result)
        assert load_checkpoint_precision(path) == mode
        models, decomposition, _ = load_parallel_models(path)
        with precision(load_checkpoint_precision(path)):
            rollout = ParallelPredictor(models, decomposition).rollout(
                dataset.snapshots[0], num_steps=2
            )
        return np.asarray(rollout.trajectory)

    @pytest.mark.parametrize("execution", ["threads", "processes"])
    def test_float32_matches_float64_within_tolerance(self, tmp_path, execution):
        reference = self._train_rollout(tmp_path, execution, "float64")
        trajectory = self._train_rollout(tmp_path, execution, "float32")
        assert np.all(np.isfinite(trajectory))
        scale = float(np.abs(reference).max())
        np.testing.assert_allclose(
            trajectory, reference, rtol=0.05, atol=0.05 * scale
        )


# ----------------------------------------------------------------------
# Single-model training checkpoints
# ----------------------------------------------------------------------
def small_model(seed=7):
    config = CNNConfig(channels=(4, 6, 4), kernel_size=3, strategy=PaddingStrategy.ZERO)
    return SubdomainCNN(config, rng=np.random.default_rng(seed)), config


class TestTrainingCheckpoint:
    def test_model_and_config_roundtrip(self, tmp_path):
        model, cnn_config = small_model()
        config = TrainingConfig(epochs=3, batch_size=8, lr=0.05, loss="mae", seed=4)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, config, model_config=cnn_config, epoch=2)
        checkpoint = load_checkpoint(path)
        assert checkpoint.epoch == 2
        assert checkpoint.training_config == config
        assert checkpoint.model_config == cnn_config
        state = model.state_dict()
        assert set(checkpoint.model_state) == set(state)
        for name, value in state.items():
            np.testing.assert_array_equal(checkpoint.model_state[name], value)

    def test_optimizer_state_roundtrip(self, tmp_path):
        model, _ = small_model()
        config = TrainingConfig(epochs=1, batch_size=4, loss="mse")
        optimizer = build_optimizer(config, model.parameters())
        # Populate the Adam moments with one real step.
        for param in optimizer.params:
            param.grad = np.ones_like(param.data)
        optimizer.step()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, config, optimizer)
        loaded = build_optimizer(config, model.parameters())
        loaded.load_state_dict(load_checkpoint(path).optimizer_state)
        assert loaded.step_count == 1
        for original, restored in zip(optimizer._m, loaded._m):
            np.testing.assert_array_equal(original, restored)
        for original, restored in zip(optimizer._v, loaded._v):
            np.testing.assert_array_equal(original, restored)

    def test_history_and_rng_state_roundtrip(self, tmp_path):
        model, _ = small_model()
        config = TrainingConfig(loss="mse")
        rng = np.random.default_rng(123)
        rng.random(10)  # advance mid-stream
        from repro.core import TrainingHistory

        history = TrainingHistory(
            epoch_losses=[0.5, 0.25], epoch_times=[1.0, 1.1], val_losses=[0.6]
        )
        path = tmp_path / "ckpt.npz"
        save_checkpoint(
            path, model, config, history=history, rng_state=rng.bit_generator.state
        )
        checkpoint = load_checkpoint(path)
        assert checkpoint.epoch_losses == [0.5, 0.25]
        assert checkpoint.val_losses == [0.6]
        restored = np.random.default_rng(0)
        restored.bit_generator.state = checkpoint.rng_state
        np.testing.assert_array_equal(restored.random(5), rng.random(5))

    def test_wrong_format_raises(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(DatasetError):
            load_checkpoint(path)

    def test_parallel_checkpoint_is_not_a_training_checkpoint(
        self, tmp_path, trained_result
    ):
        path = tmp_path / "models.npz"
        save_parallel_models(path, trained_result)
        with pytest.raises(DatasetError):
            load_checkpoint(path)

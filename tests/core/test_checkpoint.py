"""Checkpoint save/load tests."""

import numpy as np
import pytest

from repro.core import (
    CNNConfig,
    PaddingStrategy,
    ParallelPredictor,
    ParallelTrainer,
    TrainingConfig,
    load_parallel_models,
    save_parallel_models,
)
from repro.data import SnapshotDataset, synthetic_advection_snapshots
from repro.exceptions import DatasetError


@pytest.fixture
def trained_result():
    dataset = SnapshotDataset(synthetic_advection_snapshots(grid_size=12, num_snapshots=6, seed=0))
    trainer = ParallelTrainer(
        CNNConfig(channels=(4, 6, 4), kernel_size=3, strategy=PaddingStrategy.NEIGHBOR_FIRST),
        TrainingConfig(epochs=1, batch_size=4, lr=0.01, loss="mse"),
        num_ranks=4,
    )
    return trainer.train(dataset, execution="serial")


class TestRoundtrip:
    def test_models_identical_after_reload(self, tmp_path, trained_result):
        path = tmp_path / "models.npz"
        save_parallel_models(path, trained_result)
        models, decomposition, config = load_parallel_models(path)
        assert len(models) == 4
        assert decomposition.pgrid == trained_result.decomposition.pgrid
        assert config.strategy is PaddingStrategy.NEIGHBOR_FIRST
        for model, rank_result in zip(models, trained_result.rank_results):
            for name, value in model.state_dict().items():
                assert np.array_equal(value, rank_result.state_dict[name])

    def test_reloaded_models_predict_identically(self, tmp_path, trained_result, rng):
        path = tmp_path / "models.npz"
        save_parallel_models(path, trained_result)
        models, decomposition, _ = load_parallel_models(path)

        field = rng.standard_normal((4, 12, 12))
        original = ParallelPredictor(
            trained_result.build_models(), trained_result.decomposition
        ).rollout(field, 2)
        reloaded = ParallelPredictor(models, decomposition).rollout(field, 2)
        assert np.allclose(original.trajectory, reloaded.trajectory)

    def test_config_fields_preserved(self, tmp_path, trained_result):
        path = tmp_path / "models.npz"
        save_parallel_models(path, trained_result)
        _, _, config = load_parallel_models(path)
        assert config.channels == (4, 6, 4)
        assert config.kernel_size == 3
        assert config.negative_slope == trained_result.cnn_config.negative_slope


class TestValidation:
    def test_non_checkpoint_raises(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(DatasetError):
            load_parallel_models(path)

"""Checkpoint save/load tests."""

import numpy as np
import pytest

from repro.core import (
    CNNConfig,
    PaddingStrategy,
    ParallelPredictor,
    ParallelTrainer,
    SubdomainCNN,
    TrainingConfig,
    load_checkpoint,
    load_parallel_models,
    save_checkpoint,
    save_parallel_models,
)
from repro.core.engine import build_optimizer
from repro.data import SnapshotDataset, synthetic_advection_snapshots
from repro.exceptions import DatasetError


@pytest.fixture
def trained_result():
    dataset = SnapshotDataset(synthetic_advection_snapshots(grid_size=12, num_snapshots=6, seed=0))
    trainer = ParallelTrainer(
        CNNConfig(channels=(4, 6, 4), kernel_size=3, strategy=PaddingStrategy.NEIGHBOR_FIRST),
        TrainingConfig(epochs=1, batch_size=4, lr=0.01, loss="mse"),
        num_ranks=4,
    )
    return trainer.train(dataset, execution="serial")


class TestRoundtrip:
    def test_models_identical_after_reload(self, tmp_path, trained_result):
        path = tmp_path / "models.npz"
        save_parallel_models(path, trained_result)
        models, decomposition, config = load_parallel_models(path)
        assert len(models) == 4
        assert decomposition.pgrid == trained_result.decomposition.pgrid
        assert config.strategy is PaddingStrategy.NEIGHBOR_FIRST
        for model, rank_result in zip(models, trained_result.rank_results):
            for name, value in model.state_dict().items():
                assert np.array_equal(value, rank_result.state_dict[name])

    def test_reloaded_models_predict_identically(self, tmp_path, trained_result, rng):
        path = tmp_path / "models.npz"
        save_parallel_models(path, trained_result)
        models, decomposition, _ = load_parallel_models(path)

        field = rng.standard_normal((4, 12, 12))
        original = ParallelPredictor(
            trained_result.build_models(), trained_result.decomposition
        ).rollout(field, 2)
        reloaded = ParallelPredictor(models, decomposition).rollout(field, 2)
        assert np.allclose(original.trajectory, reloaded.trajectory)

    def test_config_fields_preserved(self, tmp_path, trained_result):
        path = tmp_path / "models.npz"
        save_parallel_models(path, trained_result)
        _, _, config = load_parallel_models(path)
        assert config.channels == (4, 6, 4)
        assert config.kernel_size == 3
        assert config.negative_slope == trained_result.cnn_config.negative_slope


class TestValidation:
    def test_non_checkpoint_raises(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(DatasetError):
            load_parallel_models(path)


# ----------------------------------------------------------------------
# Single-model training checkpoints
# ----------------------------------------------------------------------
def small_model(seed=7):
    config = CNNConfig(channels=(4, 6, 4), kernel_size=3, strategy=PaddingStrategy.ZERO)
    return SubdomainCNN(config, rng=np.random.default_rng(seed)), config


class TestTrainingCheckpoint:
    def test_model_and_config_roundtrip(self, tmp_path):
        model, cnn_config = small_model()
        config = TrainingConfig(epochs=3, batch_size=8, lr=0.05, loss="mae", seed=4)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, config, model_config=cnn_config, epoch=2)
        checkpoint = load_checkpoint(path)
        assert checkpoint.epoch == 2
        assert checkpoint.training_config == config
        assert checkpoint.model_config == cnn_config
        state = model.state_dict()
        assert set(checkpoint.model_state) == set(state)
        for name, value in state.items():
            np.testing.assert_array_equal(checkpoint.model_state[name], value)

    def test_optimizer_state_roundtrip(self, tmp_path):
        model, _ = small_model()
        config = TrainingConfig(epochs=1, batch_size=4, loss="mse")
        optimizer = build_optimizer(config, model.parameters())
        # Populate the Adam moments with one real step.
        for param in optimizer.params:
            param.grad = np.ones_like(param.data)
        optimizer.step()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, config, optimizer)
        loaded = build_optimizer(config, model.parameters())
        loaded.load_state_dict(load_checkpoint(path).optimizer_state)
        assert loaded.step_count == 1
        for original, restored in zip(optimizer._m, loaded._m):
            np.testing.assert_array_equal(original, restored)
        for original, restored in zip(optimizer._v, loaded._v):
            np.testing.assert_array_equal(original, restored)

    def test_history_and_rng_state_roundtrip(self, tmp_path):
        model, _ = small_model()
        config = TrainingConfig(loss="mse")
        rng = np.random.default_rng(123)
        rng.random(10)  # advance mid-stream
        from repro.core import TrainingHistory

        history = TrainingHistory(
            epoch_losses=[0.5, 0.25], epoch_times=[1.0, 1.1], val_losses=[0.6]
        )
        path = tmp_path / "ckpt.npz"
        save_checkpoint(
            path, model, config, history=history, rng_state=rng.bit_generator.state
        )
        checkpoint = load_checkpoint(path)
        assert checkpoint.epoch_losses == [0.5, 0.25]
        assert checkpoint.val_losses == [0.6]
        restored = np.random.default_rng(0)
        restored.bit_generator.state = checkpoint.rng_state
        np.testing.assert_array_equal(restored.random(5), rng.random(5))

    def test_wrong_format_raises(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(DatasetError):
            load_checkpoint(path)

    def test_parallel_checkpoint_is_not_a_training_checkpoint(
        self, tmp_path, trained_result
    ):
        path = tmp_path / "models.npz"
        save_parallel_models(path, trained_result)
        with pytest.raises(DatasetError):
            load_checkpoint(path)

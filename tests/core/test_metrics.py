"""Metric tests."""

import numpy as np
import pytest

from repro.core import mae, mape, max_error, per_channel, relative_l2, rmse, summarize
from repro.exceptions import ShapeError


class TestScalarMetrics:
    def test_rmse(self):
        assert np.isclose(rmse(np.array([1.0, 3.0]), np.array([0.0, 0.0])), np.sqrt(5.0))

    def test_mae(self):
        assert np.isclose(mae(np.array([1.0, -3.0]), np.array([0.0, 0.0])), 2.0)

    def test_max_error(self):
        assert max_error(np.array([1.0, -3.0]), np.array([0.5, 0.0])) == 3.0

    def test_mape_eq7(self):
        assert np.isclose(mape(np.array([1.1, 2.0]), np.array([1.0, 2.0])), 5.0)

    def test_relative_l2_zero_for_exact(self, rng):
        x = rng.standard_normal((4, 4))
        assert relative_l2(x, x) == 0.0

    def test_relative_l2_one_for_zero_prediction(self, rng):
        x = rng.standard_normal((4, 4))
        assert np.isclose(relative_l2(np.zeros_like(x), x), 1.0)

    def test_relative_l2_scale_free(self, rng):
        x = rng.standard_normal((4, 4))
        y = rng.standard_normal((4, 4))
        assert np.isclose(relative_l2(x, y), relative_l2(10.0 * x, 10.0 * y))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            rmse(np.zeros(3), np.zeros(4))


class TestPerChannel:
    def test_uses_paper_channel_names(self, rng):
        pred = rng.standard_normal((4, 5, 5))
        target = rng.standard_normal((4, 5, 5))
        result = per_channel(rmse, pred, target)
        assert list(result) == ["p", "rho", "u", "v"]

    def test_values_match_direct_computation(self, rng):
        pred = rng.standard_normal((4, 5, 5))
        target = rng.standard_normal((4, 5, 5))
        result = per_channel(rmse, pred, target)
        assert np.isclose(result["rho"], rmse(pred[1], target[1]))

    def test_generic_names_for_other_channel_counts(self, rng):
        pred = rng.standard_normal((2, 5, 5))
        target = rng.standard_normal((2, 5, 5))
        assert list(per_channel(rmse, pred, target)) == ["ch0", "ch1"]

    def test_batched_leading_axis(self, rng):
        pred = rng.standard_normal((7, 4, 5, 5))
        target = rng.standard_normal((7, 4, 5, 5))
        result = per_channel(rmse, pred, target)
        assert len(result) == 4

    def test_too_few_dims_raise(self, rng):
        with pytest.raises(ShapeError):
            per_channel(rmse, rng.standard_normal((5, 5)), rng.standard_normal((5, 5)))


class TestSummarize:
    def test_contains_all_keys(self, rng):
        pred = rng.standard_normal((4, 6, 6))
        target = rng.standard_normal((4, 6, 6))
        summary = summarize(pred, target)
        assert set(summary) == {
            "rmse",
            "mae",
            "relative_l2",
            "max_error",
            "per_channel_relative_l2",
            "per_channel_rmse",
        }
        assert set(summary["per_channel_rmse"]) == {"p", "rho", "u", "v"}

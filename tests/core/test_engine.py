"""Engine/callback semantics plus seeded equivalence to the
pre-refactor training loops.

The golden values below were captured from the bespoke loops at the
commit *before* the Engine refactor (same configs, same seeds); the
equivalence tests pin the Engine to reproduce them bit-exactly so the
refactor is provably behaviour-preserving.
"""

import numpy as np
import pytest

from repro.core import (
    Callback,
    Checkpointer,
    CNNConfig,
    EarlyStopping,
    Engine,
    PaddingStrategy,
    ProgressLogger,
    RankDataset,
    SubdomainCNN,
    TrainingConfig,
    load_checkpoint,
    train_network,
    train_recurrent,
    train_parallel_recurrent,
    train_weight_averaging,
)
from repro.core.parallel import ParallelTrainer
from repro.core.recurrent_surrogate import RecurrentSurrogate, WindowDataset
from repro.data import SnapshotDataset, synthetic_advection_snapshots
from repro.exceptions import ConfigurationError


def toy_dataset(num=10, seed=42):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((num, 4, 8, 8))
    return RankDataset(rank=0, inputs=x, targets=0.5 * x + 0.1, halo=0, crop=0)


def small_cnn_config(strategy=PaddingStrategy.ZERO):
    return CNNConfig(channels=(4, 6, 4), kernel_size=3, strategy=strategy)


def small_model(seed=7, strategy=PaddingStrategy.ZERO):
    return SubdomainCNN(small_cnn_config(strategy), rng=np.random.default_rng(seed))


def advection(num_snapshots=9, grid_size=12, seed=0):
    return SnapshotDataset(
        synthetic_advection_snapshots(
            grid_size=grid_size, num_snapshots=num_snapshots, seed=seed
        )
    )


# ----------------------------------------------------------------------
# Event sequence
# ----------------------------------------------------------------------
class EventRecorder(Callback):
    def __init__(self):
        self.events = []

    def __getattribute__(self, name):
        if name.startswith("on_"):
            events = object.__getattribute__(self, "events")
            return lambda engine: events.append(name)
        return object.__getattribute__(self, name)


class TestEventSequence:
    def test_event_order_without_validation(self):
        recorder = EventRecorder()
        config = TrainingConfig(epochs=2, batch_size=5, loss="mse", seed=0)
        Engine(small_model(), config, callbacks=(recorder,)).fit(toy_dataset())
        per_batch = ["on_batch_start", "on_after_backward", "on_batch_end"]
        per_epoch = ["on_epoch_start"] + per_batch * 2 + ["on_epoch_end"]
        assert recorder.events == ["on_fit_start"] + per_epoch * 2 + ["on_fit_end"]

    def test_validation_event_fires_before_epoch_end(self):
        recorder = EventRecorder()
        config = TrainingConfig(epochs=1, batch_size=10, loss="mse", seed=0)
        Engine(small_model(), config, callbacks=(recorder,)).fit(
            toy_dataset(), validation_data=toy_dataset(4, seed=1)
        )
        assert recorder.events == [
            "on_fit_start",
            "on_epoch_start",
            "on_batch_start",
            "on_after_backward",
            "on_batch_end",
            "on_validation_end",
            "on_epoch_end",
            "on_fit_end",
        ]

    def test_user_callbacks_run_after_defaults(self):
        observed = []

        class AfterLossHistory(Callback):
            def on_epoch_end(self, engine):
                observed.append(len(engine.history.epoch_losses))

        config = TrainingConfig(epochs=2, batch_size=10, loss="mse", seed=0)
        Engine(small_model(), config, callbacks=(AfterLossHistory(),)).fit(toy_dataset())
        # LossHistory (a default) has already appended when user callbacks run.
        assert observed == [1, 2]

    def test_fit_end_fires_even_on_error(self):
        recorder = EventRecorder()

        class Boom(Callback):
            def on_batch_end(self, engine):
                raise RuntimeError("boom")

        config = TrainingConfig(epochs=1, batch_size=10, loss="mse", seed=0)
        engine = Engine(small_model(), config, callbacks=(recorder, Boom()))
        with pytest.raises(RuntimeError):
            engine.fit(toy_dataset())
        assert recorder.events[-1] == "on_fit_end"


# ----------------------------------------------------------------------
# Seeded equivalence with the pre-refactor loops (golden values)
# ----------------------------------------------------------------------
class TestGoldenEquivalence:
    def test_train_network(self):
        model = small_model(seed=7)
        config = TrainingConfig(
            epochs=4,
            batch_size=4,
            lr=0.01,
            loss="mse",
            seed=3,
            grad_clip=1.0,
            lr_schedule="exponential",
            lr_schedule_kwargs={"gamma": 0.5},
        )
        history = train_network(model, toy_dataset(), config)
        assert history.epoch_losses == [
            0.5702630691862834,
            0.3554285259365743,
            0.3073493849471212,
            0.28498376777179574,
        ]

    def test_parallel_trainer(self):
        trainer = ParallelTrainer(
            cnn_config=small_cnn_config(PaddingStrategy.NEIGHBOR_FIRST),
            training_config=TrainingConfig(
                epochs=2, batch_size=4, lr=0.01, loss="mse", seed=1
            ),
            num_ranks=4,
            seed=5,
        )
        result = trainer.train(advection(), execution="serial")
        assert result.final_losses == [
            0.08217575238920581,
            0.0755660641980473,
            0.0848219813092068,
            0.0545402933822151,
        ]

    def test_train_recurrent(self):
        snaps = synthetic_advection_snapshots(grid_size=10, num_snapshots=8, seed=2)
        model = RecurrentSurrogate(
            channels=4, hidden_channels=6, kernel_size=3, rng=np.random.default_rng(11)
        )
        history = train_recurrent(
            model,
            WindowDataset(snaps, window=2),
            TrainingConfig(epochs=3, batch_size=2, lr=0.01, loss="mse", seed=4),
        )
        assert history.epoch_losses == [
            0.10429143511237071,
            0.07905397227389,
            0.05992293198846969,
        ]

    def test_weight_averaging(self):
        result = train_weight_averaging(
            advection(),
            num_ranks=2,
            cnn_config=small_cnn_config(),
            training_config=TrainingConfig(
                epochs=3, batch_size=4, lr=0.01, loss="mse", seed=0
            ),
            seed=9,
        )
        assert result.history.epoch_losses == [
            0.10739210964387613,
            0.08955989228766259,
            0.07723297443326674,
        ]
        assert result.bytes_reduced == 42432

    def test_parallel_recurrent(self):
        result = train_parallel_recurrent(
            advection(num_snapshots=8),
            num_ranks=2,
            window=2,
            hidden_channels=6,
            kernel_size=3,
            training_config=TrainingConfig(
                epochs=2, batch_size=2, lr=0.01, loss="mse", seed=6
            ),
            seed=13,
            execution="serial",
        )
        assert [r.history.epoch_losses for r in result.rank_results] == [
            [0.08950252515646073, 0.06414163276967585],
            [0.0761336266969359, 0.05392340633950702],
        ]


# ----------------------------------------------------------------------
# Standard callbacks
# ----------------------------------------------------------------------
class TestEarlyStopping:
    def test_stops_on_plateaued_training_loss(self):
        config = TrainingConfig(epochs=50, batch_size=10, lr=1e-12, loss="mse", seed=0)
        stopper = EarlyStopping(patience=2, min_delta=1e-3)
        engine = Engine(small_model(), config, callbacks=(stopper,))
        history = engine.fit(toy_dataset())
        # A vanishing lr plateaus immediately: epoch 1 sets best, epochs
        # 2-3 exhaust the patience.
        assert len(history.epoch_losses) == 3
        assert stopper.stopped_epoch == 3

    def test_monitors_validation_loss_when_available(self):
        config = TrainingConfig(epochs=40, batch_size=10, lr=1e-12, loss="mse", seed=0)
        stopper = EarlyStopping(patience=1, min_delta=1e-6)
        engine = Engine(small_model(), config, callbacks=(stopper,))
        history = engine.fit(toy_dataset(), validation_data=toy_dataset(4, seed=1))
        assert len(history.val_losses) == len(history.epoch_losses) < 40
        assert stopper.best == history.val_losses[0]

    def test_improving_run_trains_to_completion(self):
        config = TrainingConfig(epochs=5, batch_size=5, lr=0.01, loss="mse", seed=0)
        engine = Engine(
            small_model(), config, callbacks=(EarlyStopping(patience=5),)
        )
        assert len(engine.fit(toy_dataset()).epoch_losses) == 5

    def test_validates_parameters(self):
        with pytest.raises(ConfigurationError):
            EarlyStopping(patience=0)
        with pytest.raises(ConfigurationError):
            EarlyStopping(patience=1, min_delta=-0.1)


class TestPerfCounters:
    def test_fit_populates_perf_report(self):
        from repro.core import PerfCounters
        from repro.tensor import perf

        config = TrainingConfig(epochs=2, batch_size=5, lr=0.01, loss="mse", seed=0)
        lines = []
        engine = Engine(
            small_model(), config, callbacks=(PerfCounters(log=lines.append),)
        )
        engine.fit(toy_dataset())
        assert engine.perf_report is not None
        assert engine.perf_report["conv2d"].calls > 0
        assert engine.perf_report["conv2d"].seconds > 0.0
        assert any("conv2d" in line for line in lines)
        # The callback restores the registry's prior (disabled) state.
        assert not perf.perf_enabled()

    def test_training_identical_with_and_without_counters(self):
        from repro.core import PerfCounters

        config = TrainingConfig(epochs=3, batch_size=5, lr=0.01, loss="mse", seed=0)
        plain = Engine(small_model(), config).fit(toy_dataset())
        counted = Engine(
            small_model(), config, callbacks=(PerfCounters(),)
        ).fit(toy_dataset())
        assert plain.epoch_losses == counted.epoch_losses


class TestCheckpointer:
    def test_best_checkpoint_tracks_minimum(self, tmp_path):
        best = tmp_path / "best.npz"
        config = TrainingConfig(epochs=4, batch_size=5, lr=0.01, loss="mse", seed=0)
        saver = Checkpointer(best_path=str(best))
        engine = Engine(
            small_model(), config, callbacks=(saver,), model_config=small_cnn_config()
        )
        history = engine.fit(toy_dataset())
        # Losses decrease monotonically here, so the best epoch is the last.
        assert saver.best == min(history.epoch_losses)
        assert saver.best_epoch == len(history.epoch_losses)
        checkpoint = load_checkpoint(best)
        assert checkpoint.epoch == saver.best_epoch
        final_state = engine.model.state_dict()
        for name, value in checkpoint.model_state.items():
            np.testing.assert_array_equal(value, final_state[name])

    def test_periodic_checkpoint_every_n_epochs(self, tmp_path):
        path = tmp_path / "latest.npz"
        config = TrainingConfig(epochs=5, batch_size=5, lr=0.01, loss="mse", seed=0)
        engine = Engine(
            small_model(), config, callbacks=(Checkpointer(path=str(path), every=2),)
        )
        engine.fit(toy_dataset())
        # Written at epochs 2 and 4; the file holds the last write.
        assert load_checkpoint(path).epoch == 4

    def test_requires_some_path(self):
        with pytest.raises(ConfigurationError):
            Checkpointer()
        with pytest.raises(ConfigurationError):
            Checkpointer(path="x.npz", every=0)


class TestProgressLogger:
    def test_logs_every_epoch(self):
        lines = []
        config = TrainingConfig(epochs=3, batch_size=10, lr=0.01, loss="mse", seed=0)
        engine = Engine(
            small_model(), config, callbacks=(ProgressLogger(log=lines.append),)
        )
        engine.fit(toy_dataset())
        assert len(lines) == 3
        assert lines[0].startswith("epoch 1/3 loss=")

    def test_every_filters_but_keeps_final(self):
        lines = []
        config = TrainingConfig(epochs=5, batch_size=10, lr=0.01, loss="mse", seed=0)
        engine = Engine(
            small_model(),
            config,
            callbacks=(ProgressLogger(log=lines.append, every=2),),
        )
        engine.fit(toy_dataset())
        assert [line.split()[1] for line in lines] == ["2/5", "4/5", "5/5"]


# ----------------------------------------------------------------------
# Resume: kill-and-resume reproduces the uninterrupted run bit-exactly
# ----------------------------------------------------------------------
class StopAfter(Callback):
    """Simulate a killed run: checkpoint then stop after N epochs."""

    def __init__(self, epochs, path):
        self.epochs = epochs
        self.path = path

    def on_epoch_end(self, engine):
        if engine.epoch == self.epochs:
            engine.save(self.path)
            engine.stop_training = True


class TestResume:
    CONFIG = dict(
        epochs=6,
        batch_size=4,
        lr=0.01,
        loss="mse",
        seed=3,
        lr_schedule="exponential",
        lr_schedule_kwargs={"gamma": 0.7},
    )

    def test_resumed_training_matches_uninterrupted(self, tmp_path):
        config = TrainingConfig(**self.CONFIG)
        uninterrupted = train_network(small_model(), toy_dataset(), config)

        path = tmp_path / "mid.npz"
        interrupted = Engine(
            small_model(),
            config,
            callbacks=(StopAfter(3, str(path)),),
            model_config=small_cnn_config(),
        )
        first_half = interrupted.fit(toy_dataset())
        assert first_half.epoch_losses == uninterrupted.epoch_losses[:3]

        resumed_model = small_model(seed=99)  # weights come from the file
        resumed = Engine(resumed_model, config)
        history = resumed.fit(toy_dataset(), resume_from=str(path))
        assert history.epoch_losses == uninterrupted.epoch_losses
        final = Engine(small_model(), config)
        final_history = final.fit(toy_dataset())
        for name, value in resumed_model.state_dict().items():
            np.testing.assert_array_equal(value, final.model.state_dict()[name])
        assert final_history.epoch_losses == uninterrupted.epoch_losses

    def test_resume_rejects_mismatched_config(self, tmp_path):
        config = TrainingConfig(**self.CONFIG)
        path = tmp_path / "mid.npz"
        Engine(small_model(), config, callbacks=(StopAfter(2, str(path)),)).fit(
            toy_dataset()
        )
        other = config.replace(lr=0.5)
        with pytest.raises(ConfigurationError, match="different"):
            Engine(small_model(), other).fit(toy_dataset(), resume_from=str(path))


# ----------------------------------------------------------------------
# Config plumbing: one factory, loud failures
# ----------------------------------------------------------------------
class TestConfigFactory:
    def test_unknown_optimizer_kwarg_rejected(self):
        config = TrainingConfig(optimizer_kwargs={"momentun": 0.9}, loss="mse")
        with pytest.raises(ConfigurationError, match="momentun"):
            Engine(small_model(), config).fit(toy_dataset())

    def test_unknown_loss_kwarg_rejected(self):
        config = TrainingConfig(loss="huber", loss_kwargs={"detla": 0.5})
        with pytest.raises(ConfigurationError, match="detla"):
            Engine(small_model(), config).fit(toy_dataset())

    def test_unknown_schedule_kwarg_rejected(self):
        config = TrainingConfig(
            loss="mse", lr_schedule="exponential", lr_schedule_kwargs={"gama": 0.5}
        )
        with pytest.raises(ConfigurationError, match="gama"):
            Engine(small_model(), config).fit(toy_dataset())

    def test_valid_kwargs_accepted(self):
        config = TrainingConfig(
            epochs=1,
            batch_size=10,
            loss="huber",
            loss_kwargs={"delta": 0.5},
            optimizer="sgd",
            optimizer_kwargs={"momentum": 0.9},
        )
        history = Engine(small_model(), config).fit(toy_dataset())
        assert len(history.epoch_losses) == 1

    def test_training_config_replace_rejects_unknown_field(self):
        config = TrainingConfig()
        with pytest.raises(ConfigurationError, match="epochz"):
            config.replace(epochz=10)

    def test_training_config_replace_overrides(self):
        config = TrainingConfig(epochs=5).replace(epochs=9, lr=0.1)
        assert (config.epochs, config.lr) == (9, 0.1)

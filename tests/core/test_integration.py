"""Cross-module integration tests: the full paper pipeline at small
scale, plus structural invariants that span several subsystems."""

import numpy as np
import pytest

from repro.core import (
    CNNConfig,
    PaddingStrategy,
    ParallelPredictor,
    ParallelTrainer,
    SubdomainCNN,
    TrainingConfig,
    load_parallel_models,
    relative_l2,
    save_parallel_models,
)
from repro.data import SnapshotDataset, StandardNormalizer, generate_paper_dataset
from repro.domain import BlockDecomposition


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self, tmp_path_factory):
        produced = generate_paper_dataset(grid_size=32, num_snapshots=40, num_train=30)
        normalizer = StandardNormalizer().fit(produced.train.snapshots)
        train = SnapshotDataset(normalizer.transform(produced.train.snapshots))
        validation = SnapshotDataset(normalizer.transform(produced.validation.snapshots))
        trainer = ParallelTrainer(
            CNNConfig(strategy=PaddingStrategy.NEIGHBOR_FIRST),
            TrainingConfig(epochs=6, batch_size=8, lr=0.002, loss="mse", seed=0),
            num_ranks=4,
            seed=0,
        )
        result = trainer.train(train, execution="threads")
        return produced, normalizer, train, validation, result

    def test_training_learned_something(self, pipeline):
        _, _, _, _, result = pipeline
        for rank_result in result.rank_results:
            losses = rank_result.history.epoch_losses
            assert losses[-1] < losses[0]

    def test_prediction_beats_zero_baseline(self, pipeline):
        produced, normalizer, _, validation, result = pipeline
        predictor = ParallelPredictor(result.build_models(), result.decomposition)
        model_input, target_n = validation[0]
        prediction = predictor.rollout(model_input, 1).trajectory[1]
        pred_phys = normalizer.inverse_transform(prediction)
        target_phys = normalizer.inverse_transform(target_n)
        assert relative_l2(pred_phys, target_phys) < 1.0

    def test_checkpoint_roundtrip_preserves_predictions(self, pipeline, tmp_path):
        _, _, _, validation, result = pipeline
        path = tmp_path / "pipeline.npz"
        save_parallel_models(path, result)
        models, decomposition, _ = load_parallel_models(path)
        field = validation.snapshots[0]
        a = ParallelPredictor(result.build_models(), result.decomposition).rollout(field, 2)
        b = ParallelPredictor(models, decomposition).rollout(field, 2)
        assert np.allclose(a.trajectory, b.trajectory)

    def test_solver_data_statistics_plausible(self, pipeline):
        produced, _, _, _, _ = pipeline
        snaps = produced.train.snapshots
        # Pressure bounded by the initial amplitude (0.5 bar) with a
        # margin for the pressure-release reflection overshoot.
        assert np.abs(snaps[:, 0]).max() <= 0.75
        # Fluid initially at rest: first-snapshot velocities vanish.
        assert np.abs(snaps[0, 2:]).max() == 0.0


class TestProcessGridInvariance:
    def test_neighbor_all_prediction_independent_of_pgrid(self, rng):
        """With identical weights and full halos, the global prediction
        must not depend on HOW the domain is decomposed — (1,4), (2,2)
        and (4,1) rank grids all restrict the same global operator."""
        config = CNNConfig(
            channels=(4, 6, 4), kernel_size=3, strategy=PaddingStrategy.NEIGHBOR_ALL
        )
        reference = SubdomainCNN(config, rng=np.random.default_rng(0))
        field = rng.standard_normal((4, 12, 12))

        outputs = []
        for pgrid in [(1, 4), (2, 2), (4, 1)]:
            decomp = BlockDecomposition((12, 12), pgrid)
            models = []
            for _ in range(4):
                model = SubdomainCNN(config, rng=np.random.default_rng(1))
                model.load_state_dict(reference.state_dict())
                models.append(model)
            result = ParallelPredictor(models, decomp).rollout(field, 1)
            outputs.append(result.trajectory[1])
        assert np.allclose(outputs[0], outputs[1], atol=1e-12)
        assert np.allclose(outputs[1], outputs[2], atol=1e-12)

    def test_rank_data_partition_reconstructs_global_targets(self, rng):
        """The union of per-rank targets is exactly the global field —
        no sample is dropped or duplicated by the decomposition."""
        from repro.core import build_rank_dataset

        snaps = rng.standard_normal((6, 4, 16, 16))
        dataset = SnapshotDataset(snaps)
        decomp = BlockDecomposition.from_num_ranks((16, 16), 4)
        pieces = [
            build_rank_dataset(dataset, decomp, rank, halo=2).targets
            for rank in range(4)
        ]
        reassembled = decomp.assemble(pieces)
        assert np.allclose(reassembled, snaps[1:])

"""Single-network training-loop tests."""

import numpy as np
import pytest

from repro.core import (
    CNNConfig,
    PaddingStrategy,
    RankDataset,
    SubdomainCNN,
    TrainingConfig,
    evaluate_network,
    predict,
    train_network,
)
from repro.exceptions import ConfigurationError


def linear_task(rng, samples=20, size=10):
    """Inputs plus a fixed smoothing: learnable by one conv layer."""
    x = rng.standard_normal((samples, 4, size, size))
    kernel = np.zeros((4, 4, 3, 3))
    for c in range(4):
        kernel[c, c, 1, 1] = 0.8
        kernel[c, c, 0, 1] = 0.1
        kernel[c, c, 2, 1] = 0.1
    from repro.tensor import Tensor, conv2d

    y = conv2d(Tensor(x), Tensor(kernel), padding=1).numpy()
    return RankDataset(rank=0, inputs=x, targets=y, halo=0, crop=0)


def small_model(rng):
    return SubdomainCNN(
        CNNConfig(channels=(4, 8, 4), kernel_size=3, strategy=PaddingStrategy.ZERO),
        rng=rng,
    )


class TestTrainNetwork:
    def test_loss_decreases(self, rng):
        data = linear_task(rng)
        model = small_model(rng)
        config = TrainingConfig(epochs=25, batch_size=8, lr=0.005, loss="mse")
        history = train_network(model, data, config)
        assert history.num_epochs == 25
        assert history.epoch_losses[-1] < 0.25 * history.epoch_losses[0]

    def test_history_times_positive(self, rng):
        data = linear_task(rng, samples=6)
        history = train_network(
            small_model(rng), data, TrainingConfig(epochs=2, batch_size=4, loss="mse")
        )
        assert all(t > 0 for t in history.epoch_times)
        assert history.total_time > 0

    def test_deterministic_given_seeds(self, rng):
        data = linear_task(rng, samples=8)
        config = TrainingConfig(epochs=3, batch_size=4, lr=0.01, loss="mse", seed=5)
        model_a = SubdomainCNN(
            CNNConfig(channels=(4, 8, 4), kernel_size=3, strategy=PaddingStrategy.ZERO),
            rng=np.random.default_rng(1),
        )
        model_b = SubdomainCNN(
            CNNConfig(channels=(4, 8, 4), kernel_size=3, strategy=PaddingStrategy.ZERO),
            rng=np.random.default_rng(1),
        )
        train_network(model_a, data, config)
        train_network(model_b, data, config)
        for (_, pa), (_, pb) in zip(model_a.named_parameters(), model_b.named_parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_grad_clip_path(self, rng):
        data = linear_task(rng, samples=6)
        config = TrainingConfig(epochs=2, batch_size=4, loss="mse", grad_clip=0.5)
        history = train_network(small_model(rng), data, config)
        assert history.num_epochs == 2

    def test_sgd_optimizer_option(self, rng):
        data = linear_task(rng, samples=6)
        config = TrainingConfig(
            epochs=2, batch_size=4, loss="mse", optimizer="sgd",
            optimizer_kwargs={"momentum": 0.9},
        )
        history = train_network(small_model(rng), data, config)
        assert np.isfinite(history.final_loss)

    def test_no_shuffle_is_allowed_without_rng_seeded_order(self, rng):
        data = linear_task(rng, samples=6)
        config = TrainingConfig(epochs=1, batch_size=4, loss="mse", shuffle=False)
        train_network(small_model(rng), data, config)

    def test_lr_schedule_applied_per_epoch(self, rng):
        data = linear_task(rng, samples=6)
        config = TrainingConfig(
            epochs=3,
            batch_size=4,
            lr=0.01,
            loss="mse",
            lr_schedule="exponential",
            lr_schedule_kwargs={"gamma": 0.5},
        )
        model = small_model(rng)
        # Inspect the optimizer through a wrapped get_optimizer? Simpler:
        # verify training completes and the schedule math is exercised by
        # replicating the final lr analytically on a fresh schedule.
        history = train_network(model, data, config)
        assert history.num_epochs == 3

    def test_cosine_schedule_option(self, rng):
        data = linear_task(rng, samples=6)
        config = TrainingConfig(
            epochs=2,
            batch_size=4,
            loss="mse",
            lr_schedule="cosine",
            lr_schedule_kwargs={"total_epochs": 2},
        )
        train_network(small_model(rng), data, config)

    def test_unknown_schedule_raises(self, rng):
        data = linear_task(rng, samples=6)
        config = TrainingConfig(
            epochs=1, batch_size=4, loss="mse", lr_schedule="cyclic"
        )
        with pytest.raises(ConfigurationError):
            train_network(small_model(rng), data, config)


class TestTrainingConfigValidation:
    def test_bad_epochs(self):
        with pytest.raises(ConfigurationError):
            TrainingConfig(epochs=0)

    def test_bad_batch_size(self):
        with pytest.raises(ConfigurationError):
            TrainingConfig(batch_size=0)

    def test_bad_lr(self):
        with pytest.raises(ConfigurationError):
            TrainingConfig(lr=-0.1)

    def test_bad_grad_clip(self):
        with pytest.raises(ConfigurationError):
            TrainingConfig(grad_clip=0.0)

    def test_empty_history_final_loss_raises(self):
        from repro.core import TrainingHistory

        with pytest.raises(ConfigurationError):
            TrainingHistory().final_loss


class TestEvaluateAndPredict:
    def test_evaluate_matches_training_loss_on_same_data(self, rng):
        data = linear_task(rng, samples=8)
        model = small_model(rng)
        value = evaluate_network(model, data, loss="mse")
        # Direct computation.
        from repro.nn import MSELoss
        from repro.tensor import Tensor

        direct = MSELoss()(model(Tensor(data.inputs)), Tensor(data.targets)).item()
        assert np.isclose(value, direct, rtol=1e-10)

    def test_predict_batches_consistent(self, rng):
        data = linear_task(rng, samples=10)
        model = small_model(rng)
        full = predict(model, data.inputs, batch_size=100)
        chunked = predict(model, data.inputs, batch_size=3)
        assert np.allclose(full, chunked)

    def test_predict_records_no_graph(self, rng):
        data = linear_task(rng, samples=4)
        model = small_model(rng)
        predict(model, data.inputs)
        assert all(p.grad is None for p in model.parameters())

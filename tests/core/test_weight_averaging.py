"""Weight-averaging (Viviani-style) baseline tests."""

import numpy as np
import pytest

from repro.core import (
    CNNConfig,
    PaddingStrategy,
    TrainingConfig,
    train_weight_averaging,
)
from repro.data import SnapshotDataset, synthetic_advection_snapshots
from repro.exceptions import ConfigurationError


def small_dataset(t=9):
    return SnapshotDataset(synthetic_advection_snapshots(grid_size=12, num_snapshots=t, seed=0))


def small_cnn():
    return CNNConfig(channels=(4, 6, 4), kernel_size=3, strategy=PaddingStrategy.ZERO)


def small_training(epochs=2):
    return TrainingConfig(epochs=epochs, batch_size=4, lr=0.01, loss="mse", seed=0)


class TestMechanics:
    def test_returns_single_model(self):
        result = train_weight_averaging(
            small_dataset(), num_ranks=2, cnn_config=small_cnn(), training_config=small_training()
        )
        model = result.build_model()
        assert model.num_parameters() > 0

    def test_reduction_accounting(self):
        epochs = 3
        result = train_weight_averaging(
            small_dataset(),
            num_ranks=2,
            cnn_config=small_cnn(),
            training_config=small_training(epochs),
        )
        assert result.reduction_rounds == epochs
        # Per epoch, per rank: every parameter array in and out once.
        model = result.build_model()
        param_bytes = sum(p.data.nbytes for p in model.parameters())
        assert result.bytes_reduced == 2 * param_bytes * 2 * epochs

    def test_history_has_epoch_entries(self):
        result = train_weight_averaging(
            small_dataset(), num_ranks=2, cnn_config=small_cnn(), training_config=small_training(4)
        )
        assert len(result.history.epoch_losses) == 4

    def test_p1_equals_plain_training(self):
        """With one rank, weight averaging degenerates to plain SGD on
        all samples (averaging with yourself is the identity)."""
        dataset = small_dataset()
        result = train_weight_averaging(
            dataset, num_ranks=1, cnn_config=small_cnn(), training_config=small_training(2)
        )
        from repro.core import build_rank_dataset, train_network
        from repro.core.model import SubdomainCNN
        from repro.domain import BlockDecomposition

        decomp = BlockDecomposition((12, 12), (1, 1))
        data = build_rank_dataset(dataset, decomp, 0, halo=0)
        model = SubdomainCNN(small_cnn(), rng=np.random.default_rng(0))
        # Mirror the per-epoch seeding used inside the baseline.
        for epoch in range(2):
            train_network(
                model,
                data,
                TrainingConfig(
                    epochs=1, batch_size=4, lr=0.01, loss="mse", seed=0 + epoch
                ),
            )
        expected = model.state_dict()
        for name, value in result.state_dict.items():
            assert np.allclose(value, expected[name], atol=1e-12)

    def test_replicas_converge_to_identical_weights(self):
        """After the final allreduce, every rank holds the same weights;
        the returned model must reproduce them."""
        result = train_weight_averaging(
            small_dataset(), num_ranks=3, cnn_config=small_cnn(), training_config=small_training()
        )
        assert all(np.all(np.isfinite(v)) for v in result.state_dict.values())


class TestValidation:
    def test_too_many_ranks_raises(self):
        with pytest.raises(ConfigurationError):
            train_weight_averaging(small_dataset(t=3), num_ranks=10)

    def test_halo_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            train_weight_averaging(
                small_dataset(),
                num_ranks=2,
                cnn_config=CNNConfig(
                    channels=(4, 4), kernel_size=3, strategy=PaddingStrategy.NEIGHBOR_FIRST
                ),
            )

    def test_zero_ranks_raises(self):
        with pytest.raises(ConfigurationError):
            train_weight_averaging(small_dataset(), num_ranks=0)

"""Tests for the interprocedural flow analyzer (REP009-REP012).

Three layers: unit tests for the rank-guard classifier and the call
graph, rule tests over inline snippets and the committed fixture
corpus (planted bugs flagged at the right file:line, corrected twins
clean), and end-to-end CLI/baseline behavior including the tree gate
(``repro analyze src/repro`` is clean against the committed baseline).
"""

import ast
import json
from pathlib import Path

import pytest

from repro.analysis import (
    BASELINE_FILENAME,
    FLOW_RULES,
    analyze_paths,
    find_baseline,
    load_baseline,
)
from repro.analysis.callgraph import build_callgraph
from repro.analysis.flow import analyze_contexts
from repro.analysis.rankdomain import RankGuard, classify_guard
from repro.analysis.rules import FileContext
from repro.cli import main
from repro.exceptions import AnalysisError

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"
FLOW_FIXTURES = Path(__file__).resolve().parent / "fixtures" / "flow"


def _ctx(source: str, path: str = "snippet.py") -> FileContext:
    return FileContext.parse(path, source)


def _analyze_source(source: str, rules: set[str] | None = None):
    return analyze_contexts([_ctx(source)], rules)


# ======================================================================
# rankdomain: guard classification
# ======================================================================
def _guard_of(expr: str) -> RankGuard | None:
    return classify_guard(ast.parse(expr, mode="eval").body)


class TestClassifyGuard:
    @pytest.mark.parametrize(
        "expr",
        [
            "rank == 0",
            "rank != 0",
            "rank % 2 == 0",
            "my_rank > 0",
            "comm.rank == 0",
            "comm.Get_rank() == 0",
            "rank == 0 and world_size > 1",
            "not rank",
            "rank",
        ],
    )
    def test_rank_dependent(self, expr):
        guard = _guard_of(expr)
        assert guard is not None
        assert expr.replace("not ", "") in guard.describe() or guard.negated

    @pytest.mark.parametrize(
        "expr",
        [
            "size == 0",
            "x > 1",
            "flag",
            "len(items) == 0",
            "mode == 'train'",
        ],
    )
    def test_rank_independent(self, expr):
        assert _guard_of(expr) is None

    def test_neighbor_guard(self):
        assert _guard_of("north_peer is not None") is not None
        assert _guard_of("neighbor is None") is not None
        assert _guard_of("handle is None") is None

    def test_complement_round_trip(self):
        guard = _guard_of("rank == 0")
        assert guard is not None
        flipped = guard.complement()
        assert flipped.negated != guard.negated
        assert flipped.complement() == guard
        assert "not (" in flipped.describe() or "not (" in guard.describe()


# ======================================================================
# callgraph: indexing and shape-aware resolution
# ======================================================================
_GRAPH_SRC = """
import numpy as np

class Plan:
    def run(self):
        self.helper()
        h = np.zeros(4)
        return h

    def helper(self):
        return free_fn()

class Other:
    def helper(self):
        return 2

def free_fn():
    def nested():
        return 1
    return nested

def zeros(n):
    return [0] * n
"""


class TestCallGraph:
    def setup_method(self):
        self.graph = build_callgraph([_ctx(_GRAPH_SRC)])

    def _info(self, qualname):
        return next(
            i for i in self.graph.functions.values() if i.qualname == qualname
        )

    def test_indexes_methods_and_nested(self):
        names = {i.qualname for i in self.graph.functions.values()}
        assert {"Plan.run", "Plan.helper", "Other.helper", "free_fn",
                "free_fn.nested", "zeros"} <= names

    def test_self_call_resolves_to_own_class_only(self):
        run = self._info("Plan.run")
        ref = next(r for r in run.calls if r.leaf == "helper")
        resolved = {i.qualname for i in self.graph.resolve_ref(ref, run)}
        assert resolved == {"Plan.helper"}

    def test_numpy_qualified_call_resolves_to_nothing(self):
        run = self._info("Plan.run")
        ref = next(r for r in run.calls if r.leaf == "zeros")
        assert ref.receiver == "np"
        assert self.graph.resolve_ref(ref, run) == []

    def test_containment_edge_reaches_nested(self):
        free = self._info("free_fn")
        callees = {i.qualname for i in self.graph.callees(free)}
        assert "free_fn.nested" in callees

    def test_reachable_parents_give_witness_chain(self):
        run = self._info("Plan.run")
        parents = self.graph.reachable([run])
        nested = self._info("free_fn.nested")
        assert nested.key in parents
        chain = self.graph.chain(parents, nested.key)
        assert chain == ["Plan.run", "Plan.helper", "free_fn", "free_fn.nested"]


# ======================================================================
# rule snippets
# ======================================================================
class TestRep009Snippets:
    def test_else_branch_runs_under_complement(self):
        found = _analyze_source(
            "def f(comm, rank):\n"
            "    if rank == 0:\n"
            "        pass\n"
            "    else:\n"
            "        comm.barrier()\n"
        )
        assert [v.rule for v in found] == ["REP009"]
        assert found[0].line == 5

    def test_unguarded_collective_is_clean(self):
        assert _analyze_source("def f(comm):\n    comm.allreduce(1)\n") == []

    def test_non_comm_receiver_ignored(self):
        # functools.reduce / df.gather are not collectives.
        assert (
            _analyze_source("def f(df, fn):\n    if rank == 0:\n        df.gather(fn)\n")
            == []
        )

    def test_noqa_suppresses_flow_finding(self):
        found = _analyze_source(
            "def f(comm, rank):\n"
            "    if rank == 0:\n"
            "        comm.barrier()  # noqa: REP009\n"
        )
        assert found == []


class TestRep011Snippets:
    def test_use_after_close_in_try_finally_order(self):
        # The finally close() must be observed AFTER the body uses.
        found = _analyze_source(
            "def f(name, np):\n"
            "    segment = SharedMemory(name=name)\n"
            "    try:\n"
            "        v = segment.buf\n"
            "    finally:\n"
            "        segment.close()\n"
            "    return v\n"
        )
        assert found == []

    def test_create_without_exception_unlink(self):
        found = _analyze_source(
            "def f(data):\n"
            "    segment = SharedMemory(create=True, size=64)\n"
            "    segment.buf[:8] = data\n"
            "    segment.close()\n"
        )
        assert [v.rule for v in found] == ["REP011"]
        assert found[0].line == 2


class TestRep012Snippets:
    def test_ndarray_method_spelling_does_not_grow_hot_path(self):
        # h.reshape(...) must not merge into a project function named
        # reshape that allocates.
        found = _analyze_source(
            "import numpy as np\n"
            "class InferencePlan:\n"
            "    def step(self, h):\n"
            "        return h.reshape(4)\n"
            "def reshape(x, n):\n"
            "    return np.zeros(n) + x\n"
        )
        assert found == []

    def test_method_alloc_flagged_at_call_site(self):
        found = _analyze_source(
            "class InferencePlan:\n"
            "    def run(self, h):\n"
            "        return h.copy()\n"
        )
        assert [v.rule for v in found] == ["REP012"]
        assert ".copy()" in found[0].message


# ======================================================================
# fixture corpus
# ======================================================================
def _fixture_findings():
    report = analyze_paths([FLOW_FIXTURES])
    return [(v.rule, Path(v.path).name, v.line) for v in report.violations]


class TestFixtureCorpus:
    def test_every_planted_bug_is_flagged_at_its_line(self):
        assert _fixture_findings() == [
            ("REP009", "planted_rep009.py", 12),
            ("REP009", "planted_rep009.py", 23),
            ("REP010", "planted_rep010.py", 13),
            ("REP010", "planted_rep010.py", 22),
            ("REP011", "planted_rep011.py", 15),
            ("REP011", "planted_rep011.py", 20),
            ("REP012", "planted_rep012.py", 21),
        ]

    def test_clean_twins_are_clean(self):
        for name in sorted(FLOW_FIXTURES.glob("clean_*.py")):
            report = analyze_paths([name])
            assert report.ok, f"{name.name}:\n{report.format()}"

    def test_rep012_reports_witness_chain(self):
        report = analyze_paths([FLOW_FIXTURES / "planted_rep012.py"])
        (violation,) = report.violations
        assert (
            "InferencePlan.step -> _advance_state -> _mix_buffers"
            in violation.message
        )

    def test_rule_subset(self):
        report = analyze_paths([FLOW_FIXTURES], rules=["REP010"])
        assert {v.rule for v in report.violations} == {"REP010"}

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(AnalysisError, match="REP999"):
            analyze_paths([FLOW_FIXTURES], rules=["REP999"])


# ======================================================================
# baseline handling
# ======================================================================
_VALID_ENTRY = {
    "rule": "REP012",
    "path": "planted_rep012.py",
    "line_text": 'scratch = np.zeros(state.shape, dtype=state.dtype)  # REP012: hot path',
    "justification": "fixture exercise",
}


class TestBaseline:
    def test_matching_entry_demotes_finding(self, tmp_path):
        baseline = tmp_path / BASELINE_FILENAME
        baseline.write_text(json.dumps([_VALID_ENTRY]))
        report = analyze_paths(
            [FLOW_FIXTURES / "planted_rep012.py"], baseline_path=baseline
        )
        assert report.ok
        assert len(report.baselined) == 1
        assert report.stale_entries == []
        assert "suppressed by baseline" in report.format()

    def test_stale_entry_is_reported_not_fatal(self, tmp_path):
        entry = dict(_VALID_ENTRY, line_text="never matches anything")
        baseline = tmp_path / BASELINE_FILENAME
        baseline.write_text(json.dumps([entry]))
        report = analyze_paths(
            [FLOW_FIXTURES / "clean_rep012.py"], baseline_path=baseline
        )
        assert report.ok  # stale entries inform, findings gate
        assert len(report.stale_entries) == 1
        assert "stale baseline entry" in report.format()

    @pytest.mark.parametrize(
        "payload",
        [
            "not json at all",
            '{"findings": 12}',
            json.dumps([{"rule": "REP012", "path": "x.py"}]),  # missing fields
            json.dumps([{**_VALID_ENTRY, "justification": "  "}]),  # blank why
        ],
    )
    def test_invalid_baseline_rejected(self, tmp_path, payload):
        baseline = tmp_path / BASELINE_FILENAME
        baseline.write_text(payload)
        with pytest.raises(AnalysisError):
            load_baseline(baseline)

    def test_find_baseline_walks_up_from_paths(self, tmp_path):
        (tmp_path / BASELINE_FILENAME).write_text("[]")
        nested = tmp_path / "pkg" / "sub"
        nested.mkdir(parents=True)
        (nested / "mod.py").write_text("x = 1\n")
        assert find_baseline([nested / "mod.py"]) == tmp_path / BASELINE_FILENAME

    def test_find_baseline_none_when_absent(self, tmp_path, monkeypatch):
        nested = tmp_path / "pkg"
        nested.mkdir()
        monkeypatch.chdir(tmp_path)  # keep the repo's own baseline out of reach
        assert find_baseline([nested]) is None


# ======================================================================
# CLI + tree gate
# ======================================================================
class TestAnalyzeCli:
    def test_findings_exit_1(self, capsys):
        code = main(["analyze", str(FLOW_FIXTURES), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        for rule in FLOW_RULES:
            assert rule in out

    def test_clean_exit_0(self, capsys):
        code = main(
            ["analyze", str(FLOW_FIXTURES / "clean_rep009.py"), "--no-baseline"]
        )
        assert code == 0
        assert "0 findings" in capsys.readouterr().out

    def test_missing_baseline_exit_2(self, capsys):
        code = main(
            ["analyze", str(FLOW_FIXTURES), "--baseline", "/nonexistent/base.json"]
        )
        assert code == 2

    def test_json_format_schema(self, capsys):
        code = main(["analyze", str(FLOW_FIXTURES), "--no-baseline", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["tool"] == "repro-analyze"
        assert payload["ok"] is False
        assert payload["counts"]["REP009"] == 2
        first = payload["violations"][0]
        assert set(first) == {
            "rule", "path", "line", "col", "message", "github_annotation",
        }
        assert first["github_annotation"].startswith("::error file=")

    def test_rules_subset_flag(self, capsys):
        code = main(
            ["analyze", str(FLOW_FIXTURES), "--no-baseline", "--rules", "rep011"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "REP011" in out and "REP009" not in out

    def test_source_tree_is_analyzer_clean(self, capsys):
        """The CI gate: src/repro has no findings beyond the baseline."""
        code = main(["analyze", str(SRC), "--baseline", str(REPO / BASELINE_FILENAME)])
        out = capsys.readouterr().out
        assert code == 0, f"repro analyze found violations:\n{out}"
        assert "0 findings" in out

"""The one-shot lint gate (`make lint` / scripts/check.sh) runs clean."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def test_check_script_passes():
    proc = subprocess.run(
        ["bash", str(REPO / "scripts" / "check.sh")],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"check.sh failed:\n{proc.stdout}\n{proc.stderr}"
    assert "repro lint src/repro" in proc.stdout
    assert "all passes clean" in proc.stdout


def test_cli_check_subcommand_passes():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "check"],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=600,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 failure(s)" in proc.stdout

"""Deadlock-watchdog diagnostics: the timeout error names the blockage."""

import pytest

from repro.exceptions import DeadlockError
from repro.mpi.router import MessageRouter


def test_timeout_names_triple_and_inventory():
    router = MessageRouter(2)
    router.post(source=0, dest=1, tag=3, payload=b"x")
    with pytest.raises(DeadlockError) as err:
        router.collect(dest=0, source=1, tag=7, timeout=0.05)
    message = str(err.value)
    assert "(source=1, dest=0, tag=7)" in message
    assert "(0, 1, 3)" in message  # the queued-but-uncollected message
    assert "likely deadlock" in message


def test_timeout_reports_empty_world():
    router = MessageRouter(2)
    with pytest.raises(DeadlockError, match="no messages queued"):
        router.collect(dest=0, source=1, tag=7, timeout=0.05)


def test_pending_inventory():
    router = MessageRouter(3)
    router.post(source=0, dest=1, tag=3, payload=1)
    router.post(source=2, dest=0, tag=8, payload=2)
    assert router.pending_inventory() == [(2, 0, 8), (0, 1, 3)]
    router.try_collect(dest=0, source=2, tag=8)
    assert router.pending_inventory() == [(0, 1, 3)]

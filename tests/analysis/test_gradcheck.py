"""Gradcheck harness tests: every registered op, per ops module."""

import numpy as np
import pytest

from repro.analysis import gradcheck as gradcheck_fn
from repro.analysis import check_op, missing_cases, numerical_gradient, ops_by_module
from repro.exceptions import AnalysisError
from repro.tensor import Tensor

MODULES = ("ops_elementwise", "ops_matmul", "ops_conv", "ops_reduce", "ops_shape")
_GROUPS = ops_by_module()
_PAIRS = [(module, op) for module in MODULES for op in sorted(_GROUPS.get(module, []))]


def test_registry_covers_expected_modules():
    assert set(MODULES) <= set(_GROUPS)


def test_every_registered_op_has_a_case():
    assert missing_cases() == []


@pytest.mark.parametrize(("module", "op"), _PAIRS, ids=[f"{m}:{o}" for m, o in _PAIRS])
def test_op_gradcheck(module, op):
    cases_run = check_op(op, np.random.default_rng(7))
    assert cases_run >= 1


@pytest.mark.parametrize("op", ["conv2d", "matmul", "mul", "leaky_relu"])
def test_op_gradcheck_float32_policy(op):
    """Representative ops stay gradcheckable under the float32 policy:
    float32 analytic gradients against the float64 finite-difference
    reference, with the widened *_FLOAT32 tolerance floors (the full
    registry runs at both precisions in the CI kernels job via
    ``repro check --precision``)."""
    from repro.tensor import precision

    with precision("float32"):
        assert check_op(op, np.random.default_rng(7)) >= 1


def test_numerical_gradient_matches_closed_form():
    arrays = [np.array([0.5, -1.5, 2.0])]
    (grad,) = numerical_gradient(lambda t: t * t, arrays)
    np.testing.assert_allclose(grad, 2.0 * arrays[0], rtol=1e-6, atol=1e-8)


def test_gradcheck_detects_wrong_backward():
    def bad_square(t):
        # Correct forward, wrong backward (should be 2 * x * g).
        return Tensor.from_op(t.data * t.data, (t,), lambda g: (g,), "bad_square")

    with pytest.raises(AnalysisError, match="gradcheck failed"):
        gradcheck_fn(bad_square, [np.array([0.7, -1.2, 2.0])], case_id="bad_square[unit]")


def test_check_op_unknown_name():
    with pytest.raises(AnalysisError, match="no gradcheck case"):
        check_op("not_a_registered_op")

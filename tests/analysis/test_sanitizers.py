"""Runtime sanitizer tests: float, shape-contract, and MPI audit."""

import numpy as np
import pytest

from repro import mpi
from repro.analysis import (
    FloatSanitizer,
    MpiSanitizer,
    PrecisionSanitizer,
    ShapeContract,
)
from repro.exceptions import SanitizerError
from repro.mpi.router import MessageRouter
from repro.nn.module import Module
from repro.tensor import Tensor, precision


# ----------------------------------------------------------------------
# Zero-cost-when-off: the chokepoints are byte-identical outside a context
# ----------------------------------------------------------------------
def test_sanitizers_restore_chokepoints():
    before_from_op = Tensor.__dict__["from_op"]
    before_call = Module.__dict__["__call__"]
    before_post = MessageRouter.__dict__["post"]
    before_collect = MessageRouter.__dict__["collect"]
    with FloatSanitizer(), ShapeContract(), MpiSanitizer(strict=False):
        assert Tensor.__dict__["from_op"] is not before_from_op
        assert Module.__dict__["__call__"] is not before_call
        assert MessageRouter.__dict__["post"] is not before_post
    assert Tensor.__dict__["from_op"] is before_from_op
    assert Module.__dict__["__call__"] is before_call
    assert MessageRouter.__dict__["post"] is before_post
    assert MessageRouter.__dict__["collect"] is before_collect


def test_float_sanitizer_restores_after_error():
    before = Tensor.__dict__["from_op"]
    with pytest.raises(SanitizerError):
        with FloatSanitizer(), np.errstate(invalid="ignore"):
            Tensor(np.array([-1.0])).log()
    assert Tensor.__dict__["from_op"] is before


# ----------------------------------------------------------------------
# FloatSanitizer
# ----------------------------------------------------------------------
def test_float_sanitizer_names_op_on_nan_forward():
    t = Tensor(np.array([-1.0, 2.0]))
    with FloatSanitizer(), np.errstate(invalid="ignore"):
        with pytest.raises(SanitizerError, match=r"'log'.*forward") as err:
            t.log()
    assert "NaN" in str(err.value)


def test_float_sanitizer_checks_gradients():
    # Forward sqrt(0) = 0 is finite; backward 0.5 / sqrt(0) is Inf.
    t = Tensor(np.array([0.0, 1.0]), requires_grad=True)
    with FloatSanitizer(check_gradients=True), np.errstate(divide="ignore"):
        out = t ** 0.5
        with pytest.raises(SanitizerError, match="gradient"):
            out.sum().backward()


def test_float_sanitizer_clean_pass_is_silent():
    t = Tensor(np.array([1.0, 2.0]), requires_grad=True)
    with FloatSanitizer():
        (t.exp() * 2.0).sum().backward()
    np.testing.assert_allclose(t.grad, 2.0 * np.exp(t.data))


# ----------------------------------------------------------------------
# PrecisionSanitizer
# ----------------------------------------------------------------------
def test_precision_sanitizer_restores_chokepoint():
    before = Tensor.__dict__["from_op"]
    with PrecisionSanitizer():
        assert Tensor.__dict__["from_op"] is not before
    assert Tensor.__dict__["from_op"] is before


def test_precision_sanitizer_flags_float64_leak_under_float32():
    """A float64 operand entering a float32 graph promotes the op
    output to float64 — exactly the silent up-cast the sanitizer
    exists to catch."""
    with precision("float32"), PrecisionSanitizer():
        t = Tensor(np.ones(3))  # float32 under the policy
        leak = Tensor(np.ones(3), dtype=np.float64)
        with pytest.raises(SanitizerError, match="float64.*float32"):
            t + leak


def test_precision_sanitizer_clean_float32_graph_is_silent():
    with precision("float32"), PrecisionSanitizer():
        t = Tensor(np.ones((2, 3)), requires_grad=True)
        (t.exp() * 2.0).sum().backward()
    assert t.grad.dtype == np.float32


def test_precision_sanitizer_checks_gradients():
    """Gradient arrays produced by backward closures are checked too.
    A float64 seed alone can't trigger it (backward_pass casts the seed
    to the root's dtype), so the leak has to live inside a closure —
    here a backward that multiplies by a float64 constant."""
    with precision("float32"), PrecisionSanitizer(check_gradients=True):
        t = Tensor(np.ones(3), requires_grad=True)
        scale64 = np.full(3, 2.0, dtype=np.float64)  # backward-only leak
        out = Tensor.from_op(
            t.data * np.float32(1.0), [t], lambda grad: (grad * scale64,), "leaky-op"
        )
        with pytest.raises(SanitizerError, match="gradient"):
            out.sum().backward()


def test_precision_sanitizer_ignores_non_floating_outputs():
    with precision("float32"), PrecisionSanitizer():
        t = Tensor(np.array([1.0, -2.0]))
        assert (t > 0.0).dtype == np.bool_ or (t > 0.0) is not None


def test_precision_sanitizer_default_float64_mode_is_silent():
    with PrecisionSanitizer():
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 3.0).sum().backward()
    assert t.grad.dtype == np.float64


# ----------------------------------------------------------------------
# ShapeContract
# ----------------------------------------------------------------------
class _Identity(Module):
    def forward(self, x):
        return x


class _Untracked(Module):
    def forward(self, x):
        return x.data  # escapes the autograd tape


class _Drifting(Module):
    def __init__(self):
        super().__init__()
        self.calls = 0

    def forward(self, x):
        self.calls += 1
        if self.calls > 1:
            return Tensor(np.zeros((1, self.calls)))
        return Tensor(np.zeros((1, 1)))


def test_shape_contract_rejects_integer_input():
    t = Tensor(np.zeros(3))
    t.data = np.arange(3)  # plant a non-floating buffer
    with ShapeContract():
        with pytest.raises(SanitizerError, match="non-floating"):
            _Identity()(t)


def test_shape_contract_rejects_non_tensor_output():
    with ShapeContract():
        with pytest.raises(SanitizerError, match="ndarray"):
            _Untracked()(Tensor(np.zeros(3)))


def test_shape_contract_detects_shape_drift():
    module = _Drifting()
    x = Tensor(np.zeros((2, 2)))
    with ShapeContract():
        module(x)
        with pytest.raises(SanitizerError, match="shape contract"):
            module(x)


def test_shape_contract_clean_module_passes():
    module = _Identity()
    with ShapeContract():
        for _ in range(3):
            module(Tensor(np.zeros((2, 2))))


# ----------------------------------------------------------------------
# MpiSanitizer
# ----------------------------------------------------------------------
def _orphan_program(comm):
    if comm.rank == 0:
        comm.send(1.0, dest=1, tag=5)
    return comm.rank


def test_mpi_sanitizer_detects_unmatched_message():
    with pytest.raises(SanitizerError) as err:
        with MpiSanitizer(strict=True):
            mpi.run_parallel(_orphan_program, 2)
    assert "source=0 dest=1 tag=5" in str(err.value)


def test_mpi_sanitizer_non_strict_reports_without_raising():
    with MpiSanitizer(strict=False) as sanitizer:
        mpi.run_parallel(_orphan_program, 2)
    assert sanitizer.report.unmatched == [((0, 1, 5), 1)]
    assert "UNMATCHED source=0 dest=1 tag=5" in sanitizer.report.format()


def test_mpi_sanitizer_clean_traffic_passes():
    def pingpong(comm):
        if comm.rank == 0:
            comm.send(np.arange(4.0), dest=1, tag=9)
        else:
            return comm.recv(source=0, tag=9)

    with MpiSanitizer(strict=True) as sanitizer:
        mpi.run_parallel(pingpong, 2)
    assert sanitizer.report.ok
    assert sum(a.messages_posted for a in sanitizer.report.audits) == 1


def test_mpi_sanitizer_audits_collectives():
    def allreduce_program(comm):
        return comm.allreduce(float(comm.rank))

    with MpiSanitizer(strict=True) as sanitizer:
        results = mpi.run_parallel(allreduce_program, 4)
    assert results == [6.0] * 4
    assert sanitizer.report.ok

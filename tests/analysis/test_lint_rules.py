"""Unit tests for the REP00x rule catalogue on inline source snippets."""

import textwrap

import pytest

from repro.analysis.rules import (
    FileContext,
    audit_message_events,
    collect_message_events,
    run_file_rules,
)
from repro.exceptions import AnalysisError


def lint_snippet(source, path="snippet.py", rules=None):
    ctx = FileContext.parse(path, textwrap.dedent(source))
    return list(run_file_rules(ctx, rules))


def rep003_violations(*sources):
    events = []
    for i, source in enumerate(sources):
        ctx = FileContext.parse(f"file{i}.py", textwrap.dedent(source))
        events.extend(collect_message_events(ctx))
    return list(audit_message_events(events))


# ----------------------------------------------------------------------
# REP001 — in-place .data mutation
# ----------------------------------------------------------------------
class TestRep001:
    def test_augmented_assignment_flagged(self):
        hits = lint_snippet("x.data += delta\n", rules={"REP001"})
        assert [v.rule for v in hits] == ["REP001"]
        assert "augmented assignment" in hits[0].message

    def test_element_assignment_flagged(self):
        hits = lint_snippet("x.data[...] = values\n", rules={"REP001"})
        assert [v.rule for v in hits] == ["REP001"]

    def test_rebinding_flagged(self):
        hits = lint_snippet("x.data = other\n", rules={"REP001"})
        assert [v.rule for v in hits] == ["REP001"]
        assert "rebinding" in hits[0].message

    def test_inplace_ndarray_method_flagged(self):
        hits = lint_snippet("x.data.fill(0.0)\n", rules={"REP001"})
        assert [v.rule for v in hits] == ["REP001"]

    def test_ufunc_at_flagged(self):
        hits = lint_snippet("np.add.at(x.data, idx, v)\n", rules={"REP001"})
        assert [v.rule for v in hits] == ["REP001"]

    def test_no_grad_block_sanctioned(self):
        source = """
        with no_grad():
            x.data += delta
        """
        assert lint_snippet(source, rules={"REP001"}) == []

    def test_ctor_self_bind_sanctioned(self):
        source = """
        class Tensor:
            def __init__(self, data):
                self.data = data
        """
        assert lint_snippet(source, rules={"REP001"}) == []

    def test_rebind_outside_ctor_flagged(self):
        source = """
        class Tensor:
            def clobber(self, data):
                self.data = data
        """
        hits = lint_snippet(source, rules={"REP001"})
        assert [v.rule for v in hits] == ["REP001"]

    def test_optim_directory_sanctioned(self):
        hits = lint_snippet(
            "p.data -= lr * p.grad\n", path="src/repro/optim/sgd.py", rules={"REP001"}
        )
        assert hits == []

    def test_noqa_suppression(self):
        hits = lint_snippet("x.data += delta  # noqa: REP001\n", rules={"REP001"})
        assert hits == []

    def test_bare_noqa_suppresses_all(self):
        hits = lint_snippet("x.data += delta  # noqa\n", rules={"REP001"})
        assert hits == []

    def test_out_of_place_not_flagged(self):
        assert lint_snippet("y = x.data + delta\n", rules={"REP001"}) == []


# ----------------------------------------------------------------------
# REP002 — communicator crossing a thread boundary
# ----------------------------------------------------------------------
class TestRep002:
    def test_target_free_variable_flagged(self):
        source = """
        import threading

        def launch(comm):
            def worker():
                comm.send(1.0, dest=0)
            return threading.Thread(target=worker)
        """
        hits = lint_snippet(source, rules={"REP002"})
        assert [v.rule for v in hits] == ["REP002"]
        assert "'comm'" in hits[0].message

    def test_endpoint_in_args_tuple_flagged(self):
        source = """
        import threading
        thread = threading.Thread(target=run, args=(router, 3))
        """
        hits = lint_snippet(source, rules={"REP002"})
        assert [v.rule for v in hits] == ["REP002"]

    def test_lambda_capture_flagged(self):
        source = """
        from threading import Thread
        t = Thread(target=lambda: comm.recv(source=0))
        """
        hits = lint_snippet(source, rules={"REP002"})
        assert [v.rule for v in hits] == ["REP002"]

    def test_endpoint_created_inside_thread_ok(self):
        source = """
        import threading

        def launch(router):
            def worker(rank):
                comm = WorldCommunicator(router, rank)
                comm.send(1.0, dest=0)
            return threading.Thread(target=worker, args=(0,))
        """
        # `router` is a free variable of worker, so the shared-transport
        # case still needs an explicit, documented suppression.
        hits = lint_snippet(source, rules={"REP002"})
        assert [v.rule for v in hits] == ["REP002"]
        assert "'router'" in hits[0].message

    def test_unrelated_thread_ok(self):
        source = """
        import threading

        def launch(items):
            def worker():
                items.append(1)
            return threading.Thread(target=worker)
        """
        assert lint_snippet(source, rules={"REP002"}) == []

    def test_noqa_suppression(self):
        source = """
        import threading
        t = threading.Thread(target=run, args=(router,))  # noqa: REP002
        """
        assert lint_snippet(source, rules={"REP002"}) == []


# ----------------------------------------------------------------------
# REP003 — paired-message audit
# ----------------------------------------------------------------------
class TestRep003:
    def test_matched_literals_clean(self):
        violations = rep003_violations(
            "comm.send(x, 1, tag=7)\n",
            "y, s = comm.recv(source=0, tag=7)\n",
        )
        assert violations == []

    def test_orphan_send_flagged(self):
        violations = rep003_violations("comm.send(x, 1, tag=421)\n")
        assert [v.rule for v in violations] == ["REP003"]
        assert "tag 421" in violations[0].message

    def test_orphan_recv_flagged(self):
        violations = rep003_violations("comm.recv(source=0, tag=9000)\n")
        assert [v.rule for v in violations] == ["REP003"]
        assert "no matching send" in violations[0].message

    def test_module_constants_folded(self):
        violations = rep003_violations(
            """
            TAG_BASE = 7000
            comm.send(x, 1, tag=TAG_BASE + 3)
            """,
            "comm.recv(source=0, tag=7003)\n",
        )
        assert violations == []

    def test_symbolic_tag_builder_matches_by_name(self):
        violations = rep003_violations(
            "comm.send(x, 1, tag=_halo_tag(phase, 1))\n",
            "comm.recv(source=0, tag=_halo_tag(phase, -1))\n",
        )
        assert violations == []

    def test_wildcard_recv_matches_same_file_only(self):
        same_file = """
        comm.send(x, 1, tag=55)
        comm.recv(source=0, tag=ANY_TAG)
        """
        assert rep003_violations(same_file) == []
        # The wildcard in another file does not absorb the orphan send.
        cross_file = rep003_violations(
            "comm.send(x, 1, tag=55)\n",
            "comm.recv(source=0, tag=ANY_TAG)\n",
        )
        assert [v.rule for v in cross_file] == ["REP003"]

    def test_omitted_recv_tag_is_wildcard(self):
        assert rep003_violations("comm.send(x, 1, tag=9)\ncomm.recv(source=0)\n") == []

    def test_dynamic_tag_ignored(self):
        assert rep003_violations("comm.send(x, 1, tag=base + offset)\n") == []

    def test_sendrecv_produces_both_events(self):
        violations = rep003_violations(
            "comm.sendrecv(x, 1, 0, send_tag=11, recv_tag=12)\n"
        )
        assert len(violations) == 2
        messages = " | ".join(v.message for v in violations)
        assert "tag 11" in messages and "tag 12" in messages


# ----------------------------------------------------------------------
# REP004 — loop-variable capture
# ----------------------------------------------------------------------
class TestRep004:
    def test_backward_closure_flagged(self):
        source = """
        for axis in range(ndim):
            def backward(grad):
                return unreduce(grad, axis)
            closures.append(backward)
        """
        hits = lint_snippet(source, rules={"REP004"})
        assert [v.rule for v in hits] == ["REP004"]
        assert "'axis'" in hits[0].message

    def test_lambda_flagged(self):
        source = """
        for i in range(3):
            fns.append(lambda g: g * i)
        """
        hits = lint_snippet(source, rules={"REP004"})
        assert [v.rule for v in hits] == ["REP004"]

    def test_default_argument_snapshot_ok(self):
        source = """
        for axis in range(ndim):
            def backward(grad, axis=axis):
                return unreduce(grad, axis)
            closures.append(backward)
        """
        assert lint_snippet(source, rules={"REP004"}) == []

    def test_tuple_loop_target(self):
        source = """
        for key, value in items:
            hooks[key] = lambda: handler(value)
        """
        hits = lint_snippet(source, rules={"REP004"})
        assert [v.rule for v in hits] == ["REP004"]
        assert "'value'" in hits[0].message

    def test_closure_not_using_loop_var_ok(self):
        source = """
        for i in range(3):
            fns.append(lambda g: g * 2)
        """
        assert lint_snippet(source, rules={"REP004"}) == []


# ----------------------------------------------------------------------
# REP005 — hand-rolled training loops outside the Engine
# ----------------------------------------------------------------------
class TestRep005:
    TRAINING_LOOP = """
    for epoch in range(epochs):
        for x, y in batches:
            optimizer.zero_grad()
            loss_fn(model(x), y).backward()
            optimizer.step()
    """

    def test_training_loop_flagged(self):
        hits = lint_snippet(self.TRAINING_LOOP, rules={"REP005"})
        assert hits and all(v.rule == "REP005" for v in hits)
        assert "Engine" in hits[0].message

    def test_while_loop_flagged(self):
        source = """
        while epoch < max_epochs:
            loss.backward()
            optimizer.step()
            epoch += 1
        """
        hits = lint_snippet(source, rules={"REP005"})
        assert [v.rule for v in hits] == ["REP005"]

    def test_engine_module_sanctioned(self):
        assert (
            lint_snippet(
                self.TRAINING_LOOP, path="src/repro/core/engine.py", rules={"REP005"}
            )
            == []
        )

    def test_backward_only_loop_ok(self):
        source = """
        for param in params:
            gradcheck(param).backward()
        """
        assert lint_snippet(source, rules={"REP005"}) == []

    def test_step_only_loop_ok(self):
        source = """
        for _ in range(epochs):
            schedule.step()
        """
        assert lint_snippet(source, rules={"REP005"}) == []

    def test_noqa_suppression(self):
        source = """
        for epoch in range(epochs):  # noqa: REP005
            loss.backward()
            optimizer.step()
        """
        assert lint_snippet(source, rules={"REP005"}) == []


# ----------------------------------------------------------------------
# REP006 — multiprocessing / SharedMemory outside the MPI runtime
# ----------------------------------------------------------------------
class TestRep006:
    def test_plain_import_flagged(self):
        hits = lint_snippet("import multiprocessing\n", rules={"REP006"})
        assert [v.rule for v in hits] == ["REP006"]
        assert "repro.mpi" in hits[0].message

    def test_submodule_import_flagged(self):
        hits = lint_snippet(
            "import multiprocessing.shared_memory\n", rules={"REP006"}
        )
        assert [v.rule for v in hits] == ["REP006"]

    def test_from_import_flagged(self):
        source = "from multiprocessing.shared_memory import SharedMemory\n"
        hits = lint_snippet(source, rules={"REP006"})
        assert [v.rule for v in hits] == ["REP006"]

    def test_aliased_import_flagged(self):
        hits = lint_snippet("import multiprocessing as mp\n", rules={"REP006"})
        assert [v.rule for v in hits] == ["REP006"]

    def test_mpi_runtime_sanctioned(self):
        source = "from multiprocessing import shared_memory\n"
        assert (
            lint_snippet(
                source, path="src/repro/mpi/process_backend.py", rules={"REP006"}
            )
            == []
        )

    def test_lookalike_modules_not_flagged(self):
        for source in (
            "import multiprocessing_utils\n",
            "from concurrent.futures import ProcessPoolExecutor\n",
            "import threading\n",
        ):
            assert lint_snippet(source, rules={"REP006"}) == []

    def test_noqa_suppression(self):
        source = "import multiprocessing  # noqa: REP006\n"
        assert lint_snippet(source, rules={"REP006"}) == []


# ----------------------------------------------------------------------
# REP007 — Workspace construction outside the sanctioned modules
# ----------------------------------------------------------------------
class TestRep007:
    def test_bare_construction_flagged(self):
        hits = lint_snippet("ws = Workspace()\n", rules={"REP007"})
        assert [v.rule for v in hits] == ["REP007"]
        assert "get_workspace" in hits[0].message

    def test_qualified_construction_flagged(self):
        source = "from repro.tensor import workspace\nws = workspace.Workspace(name='mine')\n"
        hits = lint_snippet(source, rules={"REP007"})
        assert [v.rule for v in hits] == ["REP007"]

    def test_tensor_package_sanctioned(self):
        assert (
            lint_snippet(
                "ws = Workspace()\n",
                path="src/repro/tensor/workspace.py",
                rules={"REP007"},
            )
            == []
        )

    def test_inference_module_sanctioned(self):
        assert (
            lint_snippet(
                "plan_ws = Workspace(name='plan')\n",
                path="src/repro/core/inference.py",
                rules={"REP007"},
            )
            == []
        )

    def test_other_core_modules_flagged(self):
        hits = lint_snippet(
            "ws = Workspace()\n", path="src/repro/core/engine.py", rules={"REP007"}
        )
        assert [v.rule for v in hits] == ["REP007"]

    def test_request_calls_not_flagged(self):
        for source in (
            "buf = ws.request('slot', (4, 4), float)\n",
            "ws = get_workspace()\n",
            "stats = WorkspaceStats()\n",
        ):
            assert lint_snippet(source, rules={"REP007"}) == []

    def test_noqa_suppression(self):
        source = "ws = Workspace()  # noqa: REP007\n"
        assert lint_snippet(source, rules={"REP007"}) == []


# ----------------------------------------------------------------------
# REP008 — raw perf_counter timing outside the observability layer
# ----------------------------------------------------------------------
class TestRep008:
    def test_qualified_call_flagged(self):
        hits = lint_snippet(
            "import time\nt0 = time.perf_counter()\n", rules={"REP008"}
        )
        assert [v.rule for v in hits] == ["REP008"]
        assert "trace.clock" in hits[0].message

    def test_bare_call_and_import_flagged(self):
        source = "from time import perf_counter\nt0 = perf_counter()\n"
        hits = lint_snippet(source, rules={"REP008"})
        assert [v.rule for v in hits] == ["REP008", "REP008"]

    def test_ns_variant_flagged(self):
        hits = lint_snippet(
            "import time\nt = time.perf_counter_ns()\n", rules={"REP008"}
        )
        assert [v.rule for v in hits] == ["REP008"]

    def test_obs_package_sanctioned(self):
        assert (
            lint_snippet(
                "import time\nclock = time.perf_counter\nt = time.perf_counter()\n",
                path="src/repro/obs/trace.py",
                rules={"REP008"},
            )
            == []
        )

    def test_perf_registry_sanctioned(self):
        assert (
            lint_snippet(
                "import time\nstart = time.perf_counter()\n",
                path="src/repro/tensor/perf.py",
                rules={"REP008"},
            )
            == []
        )

    def test_benchmarks_sanctioned(self):
        assert (
            lint_snippet(
                "import time\nstart = time.perf_counter()\n",
                path="benchmarks/bench_kernels.py",
                rules={"REP008"},
            )
            == []
        )

    def test_trace_clock_not_flagged(self):
        for source in (
            "from repro.obs import trace\nt0 = trace.clock()\n",
            "import time\ntime.sleep(0.1)\nt = time.monotonic()\n",
            "wall = time.time()\n",
        ):
            assert lint_snippet(source, rules={"REP008"}) == []

    def test_noqa_suppression(self):
        source = "import time\nt = time.perf_counter()  # noqa: REP008\n"
        assert lint_snippet(source, rules={"REP008"}) == []


# ----------------------------------------------------------------------
# noqa comment semantics (ruff-compatible)
# ----------------------------------------------------------------------
class TestNoqaSemantics:
    def test_comma_separated_code_list(self):
        source = "x.data += delta  # noqa: REP001, REP002\n"
        assert lint_snippet(source, rules={"REP001"}) == []

    def test_listed_codes_do_not_suppress_other_rules(self):
        source = "x.data += delta  # noqa: REP002\n"
        hits = lint_snippet(source, rules={"REP001"})
        assert [v.rule for v in hits] == ["REP001"]

    def test_codes_followed_by_prose(self):
        # ruff reads leading code tokens and ignores trailing prose.
        source = "x.data += delta  # noqa: REP001 receiver lives outside the tree\n"
        assert lint_snippet(source, rules={"REP001"}) == []

    def test_prose_after_other_code_is_not_a_blanket(self):
        source = "x.data += delta  # noqa: REP002 explained elsewhere\n"
        hits = lint_snippet(source, rules={"REP001"})
        assert [v.rule for v in hits] == ["REP001"]

    def test_colon_with_no_codes_is_blanket(self):
        source = "x.data += delta  # noqa:\n"
        assert lint_snippet(source, rules={"REP001"}) == []

    def test_case_insensitive(self):
        source = "x.data += delta  # NOQA: rep001\n"
        assert lint_snippet(source, rules={"REP001"}) == []

    def test_space_separated_code_list(self):
        source = "x.data += delta  # noqa: REP002 REP001\n"
        assert lint_snippet(source, rules={"REP001"}) == []


def test_unknown_rule_id_rejected():
    from repro.analysis import lint_paths

    with pytest.raises(AnalysisError, match="unknown rule"):
        lint_paths(["src/repro"], rules=["REP999"])


# ----------------------------------------------------------------------
# REP013 — physics construction outside the scenario registry
# ----------------------------------------------------------------------
class TestRep013:
    def test_equation_constructor_flagged(self):
        hits = lint_snippet("eq = LinearizedEuler(dissipation=0.02)\n", rules={"REP013"})
        assert [v.rule for v in hits] == ["REP013"]
        assert "scenario registry" in hits[0].message

    def test_qualified_constructor_flagged(self):
        hits = lint_snippet("eq = solver.Diffusion2D(nu=0.1)\n", rules={"REP013"})
        assert [v.rule for v in hits] == ["REP013"]

    def test_ic_factory_flagged(self):
        hits = lint_snippet("ic = gaussian_pulse(grid, 1.0, 0.3)\n", rules={"REP013"})
        assert [v.rule for v in hits] == ["REP013"]

    def test_hardcoded_bc_lookup_flagged(self):
        hits = lint_snippet('bc = get_boundary_condition("outflow")\n', rules={"REP013"})
        assert [v.rule for v in hits] == ["REP013"]
        assert "'outflow'" in hits[0].message

    def test_hardcoded_equation_lookup_flagged(self):
        hits = lint_snippet('eq = get_equation("diffusion", nu=0.1)\n', rules={"REP013"})
        assert [v.rule for v in hits] == ["REP013"]

    def test_spec_driven_lookup_ok(self):
        # A name that comes from a Scenario field is the sanctioned
        # pattern — only string literals are "hardcoded".
        source = """
        spec = get_scenario(name)
        bc = get_boundary_condition(spec.boundary)
        eq = get_equation(spec.equation, **spec.equation_params)
        """
        assert lint_snippet(source, rules={"REP013"}) == []

    def test_registry_helpers_ok(self):
        source = """
        spec = get_scenario("diffusion")
        eq = build_equation(spec)
        state = build_initial_state(spec, grid)
        """
        assert lint_snippet(source, rules={"REP013"}) == []

    def test_scenarios_package_sanctioned(self):
        source = "eq = AllenCahn(epsilon=0.01)\n"
        assert (
            lint_snippet(source, path="src/repro/scenarios/build.py", rules={"REP013"})
            == []
        )

    def test_solver_package_sanctioned(self):
        source = 'bc = get_boundary_condition("outflow")\n'
        assert (
            lint_snippet(source, path="src/repro/solver/simulation.py", rules={"REP013"})
            == []
        )

    def test_noqa_suppression(self):
        source = "eq = Diffusion2D(nu=0.5)  # noqa: REP013 convergence study\n"
        assert lint_snippet(source, rules={"REP013"}) == []


# ----------------------------------------------------------------------
# REP014 — float dtype literals outside the precision policy
# ----------------------------------------------------------------------
class TestRep014:
    def test_np_float64_attribute_flagged(self):
        hits = lint_snippet("x = np.zeros(4, dtype=np.float64)\n", rules={"REP014"})
        assert [v.rule for v in hits] == ["REP014"]
        assert "precision policy" in hits[0].message

    def test_np_float32_attribute_flagged(self):
        hits = lint_snippet("y = arr.astype(np.float32)\n", rules={"REP014"})
        assert [v.rule for v in hits] == ["REP014"]

    def test_qualified_numpy_spelling_flagged(self):
        hits = lint_snippet("x = numpy.float64(0.0)\n", rules={"REP014"})
        assert [v.rule for v in hits] == ["REP014"]

    def test_dtype_string_literal_flagged(self):
        hits = lint_snippet('x = np.zeros(4, dtype="float32")\n', rules={"REP014"})
        assert [v.rule for v in hits] == ["REP014"]
        assert "'float32'" in hits[0].message

    def test_policy_helpers_ok(self):
        source = """
        x = np.zeros(4, dtype=default_dtype())
        y = arr.astype(compute_dtype())
        """
        assert lint_snippet(source, rules={"REP014"}) == []

    def test_other_dtypes_ok(self):
        # Only the two policy-managed float widths are guarded: bool
        # masks, index arrays and complex dtypes are out of scope.
        source = """
        m = np.zeros(4, dtype=np.bool_)
        i = np.zeros(4, dtype=np.int64)
        """
        assert lint_snippet(source, rules={"REP014"}) == []

    def test_tensor_package_sanctioned(self):
        source = "x = np.zeros(4, dtype=np.float64)\n"
        assert (
            lint_snippet(source, path="src/repro/tensor/precision.py", rules={"REP014"})
            == []
        )

    def test_noqa_suppression(self):
        source = "ref = np.zeros(4, dtype=np.float64)  # noqa: REP014 solver golden\n"
        assert lint_snippet(source, rules={"REP014"}) == []


# ----------------------------------------------------------------------
# REP015 — Parareal correction arithmetic outside the driver
# ----------------------------------------------------------------------
class TestRep015:
    def test_three_term_correction_flagged(self):
        source = "u = coarse_new + fine_prev - coarse_prev\n"
        hits = lint_snippet(source, rules={"REP015"})
        assert [v.rule for v in hits] == ["REP015"]
        assert "PararealDriver" in hits[0].message

    def test_attribute_operands_flagged(self):
        source = "u = sweep.coarse_new - sweep.coarse_old + sweep.fine_end\n"
        hits = lint_snippet(source, rules={"REP015"})
        assert [v.rule for v in hits] == ["REP015"]

    def test_four_term_chain_flagged_once(self):
        # Sub-expressions of one chain must not double-report.
        source = "u = coarse_new + fine_prev - coarse_prev + fine_drift\n"
        hits = lint_snippet(source, rules={"REP015"})
        assert [v.rule for v in hits] == ["REP015"]

    def test_two_terms_ok(self):
        # An error metric, not the three-term correction.
        assert lint_snippet("e = coarse_end - fine_end\n", rules={"REP015"}) == []

    def test_no_fine_counterpart_ok(self):
        source = "u = coarse_a + coarse_b - other\n"
        assert lint_snippet(source, rules={"REP015"}) == []

    def test_other_operator_breaks_chain(self):
        # Relaxation-style blend: the multiply subtree is opaque.
        source = "u = coarse_new + 0.5 * (fine_prev - coarse_prev)\n"
        assert lint_snippet(source, rules={"REP015"}) == []

    def test_driver_module_sanctioned(self):
        source = "u = coarse_new + fine_prev - coarse_prev\n"
        assert (
            lint_snippet(
                source, path="src/repro/solver/parareal.py", rules={"REP015"}
            )
            == []
        )

    def test_noqa_suppression(self):
        source = "u = coarse_new + fine_prev - coarse_prev  # noqa: REP015 teaching example\n"
        assert lint_snippet(source, rules={"REP015"}) == []


# ----------------------------------------------------------------------
# REP016 — metric instruments constructed outside the obs layer
# ----------------------------------------------------------------------
class TestRep016:
    def test_qualified_construction_flagged(self):
        source = """
        from repro.obs import metrics
        GAUGE = metrics.Gauge("train.loss")
        """
        hits = lint_snippet(source, rules={"REP016"})
        assert [v.rule for v in hits] == ["REP016"]
        assert "metrics.counter" in hits[0].message

    def test_deep_qualified_construction_flagged(self):
        source = "h = obs.metrics.Histogram('lat')\n"
        hits = lint_snippet(source, rules={"REP016"})
        assert [v.rule for v in hits] == ["REP016"]

    def test_bare_gauge_and_histogram_flagged(self):
        source = """
        from repro.obs.metrics import Gauge, Histogram
        g = Gauge("x")
        h = Histogram("y")
        """
        hits = lint_snippet(source, rules={"REP016"})
        assert [v.rule for v in hits] == ["REP016", "REP016"]

    def test_bare_counter_flagged_only_with_metrics_import(self):
        source = """
        from repro.obs.metrics import Counter
        c = Counter("x")
        """
        hits = lint_snippet(source, rules={"REP016"})
        assert [v.rule for v in hits] == ["REP016"]

    def test_collections_counter_ok(self):
        source = """
        from collections import Counter
        c = Counter("abcabc")
        """
        assert lint_snippet(source, rules={"REP016"}) == []

    def test_perf_counter_lookalike_ok(self):
        # The perf registry has its own Counter class; a qualified call
        # through a non-metrics module stays clean.
        source = "c = perf.Counter()\n"
        assert lint_snippet(source, rules={"REP016"}) == []

    def test_registry_factories_ok(self):
        source = """
        from repro.obs import metrics
        c = metrics.counter("x")
        g = metrics.gauge("y")
        h = metrics.histogram("z")
        """
        assert lint_snippet(source, rules={"REP016"}) == []

    def test_obs_package_sanctioned(self):
        source = "g = metrics.Gauge('x')\n"
        assert (
            lint_snippet(
                source, path="src/repro/obs/metrics_export.py", rules={"REP016"}
            )
            == []
        )

    def test_noqa_suppression(self):
        source = "g = metrics.Gauge('x')  # noqa: REP016 test fixture\n"
        assert lint_snippet(source, rules={"REP016"}) == []

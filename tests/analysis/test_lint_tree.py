"""Tree-level lint gates: the clean tree stays clean, planted bugs are caught.

``test_source_tree_is_lint_clean`` is the CI gate the whole subsystem
exists for: any new REP00x violation in ``src/repro`` fails the suite.
"""

from pathlib import Path

from repro.analysis import lint_paths
from repro.cli import main

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def test_source_tree_is_lint_clean(capsys):
    exit_code = main(["lint", str(SRC), "--no-baseline"])
    output = capsys.readouterr().out
    assert exit_code == 0, f"repro lint found violations:\n{output}"
    assert "0 violations" in output


def test_planted_fixtures_are_caught(capsys):
    exit_code = main(["lint", str(FIXTURES), "--no-baseline"])
    output = capsys.readouterr().out
    assert exit_code == 1
    assert "REP001" in output
    assert "REP003" in output
    assert "REP005" in output
    assert "REP006" in output
    assert "REP007" in output
    assert "REP008" in output
    assert "REP014" in output
    assert "REP015" in output


def test_fixture_report_details():
    report = lint_paths([FIXTURES])
    assert not report.ok
    assert report.count("REP001") >= 1
    assert report.count("REP003") >= 2  # orphan send AND orphan recv
    assert report.count("REP005") >= 1
    assert report.count("REP006") >= 2  # plain import AND from-import
    rep001 = [v for v in report.violations if v.rule == "REP001"]
    assert rep001[0].path.endswith("planted_rep001.py")
    rep005 = [v for v in report.violations if v.rule == "REP005"]
    assert rep005[0].path.endswith("planted_rep005.py")
    rep006 = [v for v in report.violations if v.rule == "REP006"]
    assert rep006[0].path.endswith("planted_rep006.py")
    assert report.count("REP007") >= 2  # bare name AND module-qualified
    rep007 = [v for v in report.violations if v.rule == "REP007"]
    assert rep007[0].path.endswith("planted_rep007.py")
    assert report.count("REP008") >= 3  # from-import, bare call, qualified calls
    rep008 = [v for v in report.violations if v.rule == "REP008"]
    assert rep008[0].path.endswith("planted_rep008.py")
    assert report.count("REP014") >= 2  # np.float64 attribute AND dtype string
    rep014 = [v for v in report.violations if v.rule == "REP014"]
    assert rep014[0].path.endswith("planted_rep014.py")
    assert report.count("REP015") >= 2  # name chain AND attribute chain
    rep015 = [v for v in report.violations if v.rule == "REP015"]
    assert rep015[0].path.endswith("planted_rep015.py")


def test_rule_subset_runs_only_selected():
    report = lint_paths([FIXTURES], rules=["REP003"])
    assert report.count("REP001") == 0
    assert report.count("REP003") >= 2


def test_baseline_passes_skip_not_fail_when_tools_missing():
    report = lint_paths([SRC], baseline=True)
    assert report.ok, report.format()
    for result in report.baseline:
        assert result.status in {"passed", "skipped"}


def test_lint_json_format(capsys):
    import json

    exit_code = main(["lint", str(FIXTURES), "--no-baseline", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert payload["tool"] == "repro-lint"
    assert payload["ok"] is False
    assert payload["files_checked"] > 0
    assert payload["counts"]["REP001"] >= 1
    first = payload["violations"][0]
    assert set(first) == {"rule", "path", "line", "col", "message", "github_annotation"}
    annotation = first["github_annotation"]
    assert annotation.startswith("::error file=")
    assert f"title={first['rule']}" in annotation
    assert "\n" not in annotation


def test_lint_json_clean_tree(capsys):
    import json

    exit_code = main(["lint", str(SRC), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 0
    assert payload["ok"] is True
    assert payload["violations"] == []
    assert {b["tool"] for b in payload["baseline_tools"]} == {"ruff", "mypy"}
    assert all(b["status"] in {"passed", "skipped"} for b in payload["baseline_tools"])


def test_suppressed_tree_findings_are_documented():
    """Every # noqa: REPxxx comment in the tree must carry a rationale."""
    import io
    import re
    import tokenize

    pattern = re.compile(r"#\s*noqa:\s*REP\d+")
    for path in sorted(SRC.rglob("*.py")):
        source = path.read_text()
        lines = source.splitlines()
        comment_lines = {
            tok.start[0]
            for tok in tokenize.generate_tokens(io.StringIO(source).readline)
            if tok.type == tokenize.COMMENT and pattern.search(tok.string)
        }
        for lineno in comment_lines:
            # A rationale comment on one of the two preceding lines.
            context = " ".join(lines[max(0, lineno - 3) : lineno - 1])
            assert "#" in context, f"{path}:{lineno}: bare noqa without rationale"

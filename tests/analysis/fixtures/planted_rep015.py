"""Fixture with planted REP015 violations (never imported, only linted)."""


def corrected_slice(coarse_new, coarse_prev, fine_prev):
    # Hand-rolled Parareal update outside the sanctioned driver module.
    return coarse_new + fine_prev - coarse_prev


def corrected_attributes(sweep):
    update = sweep.coarse_new - sweep.coarse_old + sweep.fine_end  # second hit
    return update


def harmless_two_terms(coarse_total, fine_total):
    # Only two operands: an error metric, not the three-term correction.
    return coarse_total - fine_total


def harmless_no_fine(coarse_a, coarse_b, other):
    # Three terms but no fine-propagator counterpart.
    return coarse_a + coarse_b - other


def harmless_other_ops(coarse_new, fine_prev, coarse_prev):
    # Multiplication breaks the pure +/- chain: relaxation, not Parareal.
    return coarse_new + 0.5 * (fine_prev - coarse_prev)


def suppressed(coarse_new, coarse_prev, fine_prev):
    # Documented exception: pedagogical snippet in a docs generator.
    return coarse_new + fine_prev - coarse_prev  # noqa: REP015 teaching example

"""Fixture with a planted REP005 violation (never imported, only linted)."""


def bespoke_training_loop(model, optimizer, loss_fn, batches, epochs):
    for _ in range(epochs):
        for inputs, targets in batches:
            optimizer.zero_grad()
            loss = loss_fn(model(inputs), targets)
            loss.backward()
            optimizer.step()
    return model


def sanctioned_uses(optimizer, schedule, params, gradcheck):
    # Either call alone inside a loop is fine: schedules step per epoch,
    # gradcheck replays backward without ever stepping an optimizer.
    for _ in range(3):
        schedule.step()
    for param in params:
        gradcheck(param).backward()

"""Fixture with planted REP008 violations (never imported, only linted)."""

import time
from time import perf_counter


def rogue_timer():
    # A private perf_counter reading outside the observability layer:
    # the timestamps cannot be placed on the shared trace timeline.
    t0 = time.perf_counter()
    t1 = perf_counter()
    ns = time.perf_counter_ns()
    return t1 - t0, ns

"""Fixture with planted REP006 violations (never imported, only linted)."""

import multiprocessing
from multiprocessing.shared_memory import SharedMemory


def rogue_side_channel(payload):
    # Process transport hand-rolled outside repro.mpi: invisible to the
    # deadlock watchdog and the REP003 message audit.
    queue = multiprocessing.Queue()
    segment = SharedMemory(create=True, size=payload.nbytes)
    queue.put(segment.name)
    return queue

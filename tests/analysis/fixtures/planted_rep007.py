"""Fixture with planted REP007 violations (never imported, only linted)."""

from repro.tensor import Workspace
from repro.tensor import workspace


def rogue_private_arena():
    # A private arena outside the sanctioned modules: its buffers are
    # invisible to the shared reuse accounting, and a second owner of
    # the same slots could hand out scratch this one still holds.
    arena = Workspace(name="rogue")
    other = workspace.Workspace(name="also-rogue")
    return arena, other

"""Fixture with a planted REP001 violation (never imported, only linted)."""


def corrupt_tape(tensor, delta):
    tensor.data += delta
    return tensor

"""Fixture with planted REP003 violations (never imported, only linted).

The send tag has no receive counterpart anywhere in the fixture pool,
and the receive tag has no send counterpart.
"""


def orphan_send(comm, payload):
    comm.send(payload, 1, tag=421)


def orphan_recv(comm):
    return comm.recv(source=0, tag=9000)

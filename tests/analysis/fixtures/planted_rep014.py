"""Fixture with planted REP014 violations (never imported, only linted)."""

import numpy as np


def rogue_pinned_dtypes(field):
    # Pinned float dtypes outside src/repro/tensor/: the first silently
    # re-promotes a float32 graph to float64, the second freezes a
    # buffer out of the --precision flag's reach.
    promoted = field.astype(np.float64)
    frozen = np.zeros_like(field, dtype="float32")
    return promoted, frozen

"""Planted REP010: blocking wait cycles.

``mutual_cycle`` is the classic pairwise exchange written recv-first on
both sides of a rank parity guard: each side blocks in recv before
posting the send the other side is waiting for.  ``self_cycle`` makes
every rank receive a tag whose only sends appear later in the same
function, so no rank ever reaches the send.
"""


def mutual_cycle(comm, rank, peer, payload):
    if rank % 2 == 0:
        inbox = comm.recv(peer, tag=401)  # REP010: blocks before send(402)
        comm.send(payload, peer, tag=402)
    else:
        inbox = comm.recv(peer, tag=402)
        comm.send(payload, peer, tag=401)
    return inbox


def self_cycle(comm, peers, payload):
    inbox = comm.recv(peers[0], tag=403)  # REP010: matching sends come later
    for peer in peers:
        comm.send(payload, peer, tag=403)
    return inbox

"""Planted REP012: a fresh allocation two calls below InferencePlan.step.

``np.zeros`` sits in ``_mix_buffers``, reached via
``InferencePlan.step -> _advance_state -> _mix_buffers`` — the analyzer
must surface the whole witness chain, not just the leaf call.
"""

import numpy as np


class InferencePlan:
    def step(self, state):
        return _advance_state(state)


def _advance_state(state):
    return _mix_buffers(state)


def _mix_buffers(state):
    scratch = np.zeros(state.shape, dtype=state.dtype)  # REP012: hot path
    scratch += state
    return scratch

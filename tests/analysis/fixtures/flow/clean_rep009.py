"""Clean twin of planted_rep009: every rank enters every collective.

The collective is hoisted out of the guard; only rank-local bookkeeping
stays behind ``if rank == 0``.
"""


def unguarded_bcast(comm, rank, cfg):
    value = comm.bcast(cfg, root=0)  # all ranks participate: fine
    if rank == 0:
        _note_root_payload(cfg)  # guarded, but reaches no collective
    return value


def _note_root_payload(cfg):
    return f"root sent {len(cfg)} entries"


def barrier_after_guard(comm, rank, log):
    if rank != 0:
        log.append("worker ready")
    comm.barrier()  # outside any rank guard: fine

"""Planted REP011: shared-memory lifetime errors.

``read_after_unlink`` touches ``.buf`` after the segment is closed and
unlinked; ``leaky_create`` creates a segment with ``create=True`` and
never guards the writes with an exception-path unlink.
"""

import numpy as np


def read_after_unlink(name):
    segment = SharedMemory(name=name)
    segment.close()
    segment.unlink()
    view = np.ndarray((4,), dtype="f8", buffer=segment.buf)  # REP011: gone
    return view[0]


def leaky_create(array):
    segment = _open_untracked(create=True, size=array.nbytes)  # REP011: leak
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
    view[...] = array
    segment.close()
    return segment.name

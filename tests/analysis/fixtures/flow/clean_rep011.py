"""Clean twin of planted_rep011: correct segment lifecycle.

All ``.buf`` traffic happens while the segment is open, the creator
unlinks on the exception path before re-raising, and the reader closes
only after copying out.
"""

import numpy as np


def publish(array):
    segment = _open_untracked(create=True, size=array.nbytes)
    try:
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        return segment.name
    except BaseException:
        _unlink_untracked(segment)
        raise
    finally:
        segment.close()


def consume(name, shape):
    segment = SharedMemory(name=name)
    try:
        view = np.ndarray(shape, dtype="f8", buffer=segment.buf)
        total = float(view.sum())
    finally:
        segment.close()
        segment.unlink()
    return total

"""Clean twin of planted_rep010: sends posted before receives.

Sends are buffered on this runtime, so posting both sends first makes
either interleaving safe — the analyzer must accept this ordering.
"""


def send_first_exchange(comm, rank, peer, payload):
    if rank % 2 == 0:
        comm.send(payload, peer, tag=411)
        inbox = comm.recv(peer, tag=412)
    else:
        comm.send(payload, peer, tag=412)
        inbox = comm.recv(peer, tag=411)
    return inbox


def post_then_collect(comm, peers, payload):
    for peer in peers:
        comm.send(payload, peer, tag=413)
    return comm.recv(peers[0], tag=413)  # sends already posted: fine

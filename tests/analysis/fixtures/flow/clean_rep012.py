"""Clean twin of planted_rep012: the hot path draws from the arena.

Same call shape (plan -> helper -> helper), but the scratch buffer
comes from ``workspace.request`` and the write is an in-place
``np.copyto`` — nothing fresh is allocated after warmup.
"""

import numpy as np


class InferencePlan:
    def __init__(self, workspace):
        self.workspace = workspace

    def step(self, state):
        return _advance_arena(state, self.workspace)


def _advance_arena(state, workspace):
    return _mix_arena(state, workspace)


def _mix_arena(state, workspace):
    scratch = workspace.request("mix.scratch", state.shape, state.dtype)
    np.copyto(scratch, state)
    scratch += state
    return scratch

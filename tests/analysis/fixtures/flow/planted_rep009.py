"""Planted REP009: collectives reachable only under rank-dependent guards.

Two shapes: a directly guarded collective, and a rank-guarded call to a
helper that reaches a collective (interprocedural, via the early-return
complement: after ``if rank != 0: return`` the rest of the body runs
only on rank 0).
"""


def guarded_direct_bcast(comm, rank, cfg):
    if rank == 0:
        comm.bcast(cfg, root=0)  # REP009: only rank 0 enters the collective
    return cfg


def _sync_everyone(comm):
    comm.barrier()


def guarded_helper_barrier(comm, rank):
    if rank != 0:
        return
    _sync_everyone(comm)  # REP009: reaches barrier() on rank 0 only

"""Tests for the MPI runtime audit layer (RouterAudit / MpiSanitizer).

Covers the pieces the integration suites only exercise implicitly:
the unmatched-triple arithmetic, the report text, and the sanitizer's
strict/non-strict exit behavior — including that a body exception is
never masked by an audit failure.
"""

from collections import Counter

import pytest

from repro.analysis import MpiAuditReport, MpiSanitizer, RouterAudit
from repro.exceptions import SanitizerError
from repro.mpi.router import MessageRouter


# ----------------------------------------------------------------------
# RouterAudit arithmetic
# ----------------------------------------------------------------------
class TestRouterAudit:
    def test_unmatched_is_posted_minus_collected(self):
        audit = RouterAudit(
            world_size=2,
            posted=Counter({(0, 1, 7): 3, (1, 0, 7): 1}),
            collected=Counter({(0, 1, 7): 1, (1, 0, 7): 1}),
        )
        assert audit.unmatched() == [((0, 1, 7), 2)]
        assert audit.messages_posted == 4

    def test_over_collection_never_goes_negative(self):
        audit = RouterAudit(
            world_size=2,
            posted=Counter({(0, 1, 7): 1}),
            collected=Counter({(0, 1, 7): 2}),
        )
        assert audit.unmatched() == []

    def test_unmatched_sorted_by_triple(self):
        audit = RouterAudit(
            world_size=4,
            posted=Counter({(2, 3, 9): 1, (0, 1, 5): 1}),
        )
        assert [triple for triple, _ in audit.unmatched()] == [(0, 1, 5), (2, 3, 9)]


# ----------------------------------------------------------------------
# MpiAuditReport formatting
# ----------------------------------------------------------------------
class TestMpiAuditReport:
    def test_clean_report_text(self):
        report = MpiAuditReport(
            audits=[RouterAudit(world_size=2, posted=Counter({(0, 1, 7): 2}),
                                collected=Counter({(0, 1, 7): 2}))]
        )
        assert report.ok
        text = report.format()
        assert text.splitlines()[0] == "mpi audit: 1 world(s), 2 message(s) posted"
        assert "every posted message was collected" in text
        assert "UNMATCHED" not in text

    def test_unmatched_report_lines(self):
        report = MpiAuditReport(
            audits=[
                RouterAudit(world_size=2, posted=Counter({(0, 1, 7): 2})),
                RouterAudit(world_size=2, posted=Counter({(1, 0, 9): 1}),
                            collected=Counter({(1, 0, 9): 1})),
            ]
        )
        assert not report.ok
        text = report.format()
        assert "mpi audit: 2 world(s), 3 message(s) posted" in text
        assert (
            "  UNMATCHED source=0 dest=1 tag=7: 2 message(s) queued but never "
            "collected" in text
        )
        assert "every posted message was collected" not in text

    def test_unmatched_aggregates_across_worlds(self):
        report = MpiAuditReport(
            audits=[
                RouterAudit(world_size=2, posted=Counter({(0, 1, 7): 1})),
                RouterAudit(world_size=2, posted=Counter({(1, 0, 9): 1})),
            ]
        )
        assert report.unmatched == [((0, 1, 7), 1), ((1, 0, 9), 1)]


# ----------------------------------------------------------------------
# MpiSanitizer end-to-end
# ----------------------------------------------------------------------
class TestMpiSanitizer:
    def test_matched_traffic_passes_strict(self):
        with MpiSanitizer() as sanitizer:
            router = MessageRouter(2)
            router.post(0, 1, tag=7, payload="hello")
            payload, status = router.collect(1, 0, tag=7, timeout=1.0)
        assert payload == "hello"
        assert status.source == 0
        assert sanitizer.report.ok

    def test_unmatched_message_raises_in_strict_mode(self):
        with pytest.raises(SanitizerError, match="sent but never"):
            with MpiSanitizer():
                router = MessageRouter(2)
                router.post(0, 1, tag=7, payload="lost")

    def test_non_strict_reports_without_raising(self):
        with MpiSanitizer(strict=False) as sanitizer:
            router = MessageRouter(2)
            router.post(0, 1, tag=7, payload="lost")
        assert not sanitizer.report.ok
        assert sanitizer.report.unmatched == [((0, 1, 7), 1)]
        assert "UNMATCHED source=0 dest=1 tag=7" in sanitizer.report.format()

    def test_body_exception_is_not_masked(self):
        with pytest.raises(ValueError, match="boom"):
            with MpiSanitizer() as sanitizer:
                router = MessageRouter(2)
                router.post(0, 1, tag=7, payload="lost")
                raise ValueError("boom")
        assert not sanitizer.report.ok  # audit kept for post-mortem

    def test_try_collect_counts_as_collection(self):
        with MpiSanitizer() as sanitizer:
            router = MessageRouter(2)
            router.post(0, 1, tag=7, payload="hello")
            found = router.try_collect(1, 0, tag=7)
        assert found is not None
        assert sanitizer.report.ok

    def test_router_class_restored_after_exit(self):
        before = MessageRouter.__dict__["post"]
        with MpiSanitizer(strict=False):
            assert MessageRouter.__dict__["post"] is not before
        assert MessageRouter.__dict__["post"] is before
        # A router created after exit is not audited.
        router = MessageRouter(2)
        router.post(0, 1, tag=7, payload="untracked")
        assert not hasattr(router, "_audit")

"""Property-based tests on topology math and reductions."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import mpi
from repro.mpi import dims_create
from repro.mpi.cartesian import CartComm
from repro.mpi.world import SelfCommunicator


@given(st.integers(1, 512), st.integers(1, 4))
@settings(max_examples=100, deadline=None)
def test_dims_create_product_and_order(size, ndims):
    dims = dims_create(size, ndims)
    product = 1
    for d in dims:
        product *= d
    assert product == size
    assert len(dims) == ndims
    assert all(d >= 1 for d in dims)
    assert dims == tuple(sorted(dims, reverse=True))


@given(st.integers(1, 256))
@settings(max_examples=60, deadline=None)
def test_dims_create_2d_near_square(size):
    """The 2-D factorization is the most balanced one possible."""
    py, px = dims_create(size, 2)
    best = min(
        (max(a, size // a) - min(a, size // a))
        for a in range(1, size + 1)
        if size % a == 0
    )
    assert (py - px) == best


@given(st.integers(1, 6), st.integers(1, 6), st.data())
@settings(max_examples=60, deadline=None)
def test_cart_rank_coords_bijection(py, px, data):
    # Build topology math on a self communicator for the (1,1) case;
    # for larger grids only exercise the pure coordinate functions.
    class FakeComm(SelfCommunicator):
        @property
        def size(self):
            return py * px

    cart = CartComm(FakeComm(), (py, px))
    rank = data.draw(st.integers(0, py * px - 1))
    assert cart.rank_of(cart.coords_of(rank)) == rank


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_allreduce_sum_matches_python_sum(values):
    size = len(values)

    def program(comm):
        return comm.allreduce(values[comm.rank], op=mpi.SUM)

    results = mpi.run_parallel(program, size)
    assert results == [sum(values)] * size


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=5))
@settings(max_examples=30, deadline=None)
def test_allreduce_max_matches_python_max(values):
    size = len(values)

    def program(comm):
        return comm.allreduce(values[comm.rank], op=mpi.MAX)

    results = mpi.run_parallel(program, size)
    assert all(np.isclose(r, max(values)) for r in results)

"""Communicator splitting and probing tests (both execution backends)."""

import numpy as np
import pytest

from repro import mpi
from repro.exceptions import CommunicatorError


class TestIprobe:
    def test_false_before_true_after(self, launch):
        def program(comm):
            if comm.rank == 0:
                comm.send("m", dest=1, tag=7)
                comm.barrier()
                return None
            assert not comm.iprobe(source=0, tag=3)
            comm.barrier()  # message definitely delivered now
            assert comm.iprobe(source=0, tag=7)
            assert comm.iprobe()  # wildcard
            # Probing must not consume the message.
            assert comm.recv(source=0, tag=7) == "m"
            assert not comm.iprobe()
            return True

        assert launch(program, 2)[1]

    def test_self_communicator_probe(self):
        comm = mpi.SelfCommunicator()
        assert not comm.iprobe()
        comm.send(1, dest=0, tag=2)
        assert comm.iprobe(source=0, tag=2)
        comm.recv()
        assert not comm.iprobe()

    def test_validates_peer(self):
        comm = mpi.SelfCommunicator()
        with pytest.raises(CommunicatorError):
            comm.iprobe(source=5)


class TestSplit:
    def test_even_odd_groups(self, launch):
        def program(comm):
            sub = comm.split(color=comm.rank % 2)
            return (sub.rank, sub.size, sub.allgather(comm.rank))

        results = launch(program, 6)
        evens = [0, 2, 4]
        odds = [1, 3, 5]
        for world_rank, (sub_rank, sub_size, members) in enumerate(results):
            assert sub_size == 3
            expected = evens if world_rank % 2 == 0 else odds
            assert members == expected
            assert expected[sub_rank] == world_rank

    def test_key_reorders_group(self, launch):
        def program(comm):
            # Reverse order within the single group.
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        results = launch(program, 4)
        assert results == [3, 2, 1, 0]

    def test_negative_color_opts_out(self, launch):
        def program(comm):
            color = 0 if comm.rank < 2 else -1
            sub = comm.split(color)
            if comm.rank < 2:
                assert sub is not None
                return sub.size
            assert sub is None
            return None

        results = launch(program, 4)
        assert results == [2, 2, None, None]

    def test_subgroup_pt2pt_uses_group_ranks(self, launch):
        def program(comm):
            sub = comm.split(color=comm.rank // 2)  # pairs (0,1), (2,3)
            peer = 1 - sub.rank
            sub.send(comm.rank, dest=peer, tag=1)
            partner_world_rank = sub.recv(source=peer, tag=1)
            # Partner is the other member of my pair.
            assert partner_world_rank // 2 == comm.rank // 2
            assert partner_world_rank != comm.rank
            return True

        assert all(launch(program, 4))

    def test_concurrent_subgroup_collectives(self, launch):
        def program(comm):
            sub = comm.split(color=comm.rank % 2)
            return sub.allreduce(np.array([comm.rank]), op=mpi.SUM)[0]

        results = launch(program, 4)
        assert results == [2, 4, 2, 4]

    def test_nested_split(self, launch):
        def program(comm):
            half = comm.split(color=comm.rank // 4)
            quarter = half.split(color=half.rank // 2)
            return (half.size, quarter.size, quarter.allgather(comm.rank))

        results = launch(program, 8)
        for world_rank, (half_size, quarter_size, members) in enumerate(results):
            assert half_size == 4
            assert quarter_size == 2
            assert world_rank in members

    def test_translate(self, launch):
        def program(comm):
            sub = comm.split(color=0)
            return [sub.translate(i) for i in range(sub.size)]

        results = launch(program, 3)
        assert all(r == [0, 1, 2] for r in results)

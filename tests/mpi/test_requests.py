"""Non-blocking operation (Request) tests (both execution backends)."""

import numpy as np

from repro import mpi


class TestIsend:
    def test_isend_completes_immediately(self, launch):
        def program(comm):
            if comm.rank == 0:
                request = comm.isend("hello", dest=1, tag=1)
                assert request.completed
                assert request.wait() is None
                return None
            return comm.recv(source=0, tag=1)

        assert launch(program, 2)[1] == "hello"


class TestIrecv:
    def test_wait_returns_payload(self, launch):
        def program(comm):
            if comm.rank == 0:
                comm.send(np.arange(3.0), dest=1, tag=4)
                return None
            request = comm.irecv(source=0, tag=4)
            payload = request.wait()
            assert request.status.source == 0
            assert request.status.tag == 4
            return payload

        assert np.allclose(launch(program, 2)[1], np.arange(3.0))

    def test_test_polls_without_blocking(self, launch):
        def program(comm):
            if comm.rank == 1:
                request = comm.irecv(source=0, tag=9)
                done, _ = request.test()  # nothing sent yet: must not block
                comm.send("ready", dest=0, tag=8)
                payload = request.wait()
                return payload
            comm.recv(source=1, tag=8)
            comm.send("late", dest=1, tag=9)
            return None

        assert launch(program, 2)[1] == "late"

    def test_wait_after_successful_test_returns_same(self, launch):
        def program(comm):
            if comm.rank == 0:
                comm.send(123, dest=1, tag=2)
                comm.barrier()
                return None
            comm.barrier()  # ensure the message has arrived
            request = comm.irecv(source=0, tag=2)
            done, value = request.test()
            assert done and value == 123
            assert request.wait() == 123
            return True

        assert launch(program, 2)[1]

    def test_multiple_outstanding_irecvs(self, launch):
        def program(comm):
            if comm.rank == 0:
                for i in range(4):
                    comm.send(i, dest=1, tag=i)
                return None
            requests = [comm.irecv(source=0, tag=i) for i in range(4)]
            return mpi.wait_all(requests)

        assert launch(program, 2)[1] == [0, 1, 2, 3]

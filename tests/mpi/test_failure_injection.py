"""Failure-injection tests for the message-passing runtime.

The launcher must behave sanely when ranks die, hang, or flood the
router — the properties a long-running training job relies on.  The
behavioural guarantees are checked on both execution backends; tests
that poke the in-process ``MessageRouter`` directly stay thread-side.
"""

import threading
import time

import numpy as np
import pytest

from repro import mpi
from repro.exceptions import CommunicatorError, DeadlockError
from repro.mpi.router import MessageRouter


class TestAbortSemantics:
    def test_abort_wakes_blocked_receivers(self, launch):
        """A rank crash must not leave peers blocked forever."""
        start = time.monotonic()

        def program(comm):
            if comm.rank == 0:
                raise RuntimeError("early death")
            # Would block for the full watchdog window without abort.
            comm.recv(source=0, tag=1, timeout=30.0)

        with pytest.raises(RuntimeError, match="early death"):
            launch(program, 2)
        assert time.monotonic() - start < 10.0

    def test_abort_poisons_future_receives(self):
        router = MessageRouter(2)
        router.abort(ValueError("poisoned"))
        with pytest.raises(DeadlockError):
            router.collect(0, mpi.ANY_SOURCE, mpi.ANY_TAG, timeout=1.0)
        with pytest.raises(DeadlockError):
            router.try_collect(0, mpi.ANY_SOURCE, mpi.ANY_TAG)

    def test_multiple_rank_failures_report_first_by_rank(self, launch):
        def program(comm):
            raise ValueError(f"rank {comm.rank}")

        with pytest.raises(ValueError, match="rank 0"):
            launch(program, 3)

    def test_exception_in_one_of_many_does_not_hang_collectives(self, launch):
        def program(comm):
            if comm.rank == 2:
                raise KeyError("lost rank")
            comm.barrier()

        with pytest.raises(KeyError):
            launch(program, 4)


class TestTimeouts:
    def test_region_timeout_aborts_hung_world(self, launch):
        release = threading.Event()

        def program(comm):
            # Hang without ever posting a receive.  (Under the process
            # backend each rank sleeps on its own copy of the event and
            # is reclaimed by the launcher's grace-then-terminate path.)
            release.wait(20.0)

        start = time.monotonic()
        try:
            launch(program, 2, timeout=0.5, deadlock_timeout=None)
        except CommunicatorError:
            pass
        finally:
            release.set()
        # The launcher must come back promptly, not after 20s.
        assert time.monotonic() - start < 15.0

    def test_watchdog_disabled_with_none(self, launch):
        """deadlock_timeout=None means block indefinitely: verify the
        message does eventually arrive in a slow-sender scenario."""

        def program(comm):
            if comm.rank == 0:
                time.sleep(0.3)
                comm.send("late", dest=1, tag=1)
                return None
            return comm.recv(source=0, tag=1)

        results = launch(program, 2, deadlock_timeout=None)
        assert results[1] == "late"


class TestStress:
    def test_many_small_messages_all_delivered(self, launch):
        count = 300

        def program(comm):
            peer = 1 - comm.rank
            for i in range(count):
                comm.send((comm.rank, i), dest=peer, tag=i % 7)
            received = []
            for _ in range(count):
                received.append(comm.recv(source=peer))
            return sorted(m[1] for m in received)

        results = launch(program, 2)
        assert results[0] == sorted(range(count))
        assert results[1] == sorted(range(count))

    def test_large_array_payloads(self, launch):
        """200k float64 crosses the shared-memory threshold on the
        process backend — exercises the header+buffer transport."""
        payload = np.arange(200_000, dtype=np.float64)

        def program(comm):
            if comm.rank == 0:
                comm.send(payload, dest=1, tag=1)
                return None
            received = comm.recv(source=0, tag=1)
            return float(received.sum())

        results = launch(program, 2)
        assert results[1] == float(payload.sum())

    def test_pending_count_drains_to_zero(self):
        router = MessageRouter(2)
        router.post(0, 1, 5, "x")
        router.post(0, 1, 5, "y")
        assert router.pending_count() == 2
        assert router.pending_count(1) == 2
        assert router.pending_count(0) == 0
        router.collect(1, 0, 5, timeout=1.0)
        router.collect(1, 0, 5, timeout=1.0)
        assert router.pending_count() == 0

    def test_repeated_worlds_do_not_leak_state(self, launch):
        """Fresh run_parallel calls must not see old messages."""

        def sender(comm):
            comm.send("stale", dest=(comm.rank + 1) % comm.size, tag=3)
            # Deliberately do NOT receive.
            return True

        assert all(launch(sender, 2))

        def receiver(comm):
            found = comm.irecv(source=mpi.ANY_SOURCE, tag=3).test()
            return found[0]

        assert launch(receiver, 2) == [False, False]

"""Unit tests for the router's payload-isolation fast path.

``_isolate_payload`` replaced a blanket ``copy.deepcopy`` on the send
path; these tests pin the contract that matters: after a send, no
sender-side mutation may ever reach the receiver, for every payload
shape the fast path special-cases — and for the ones it doesn't.
"""

import numpy as np

from repro.mpi.router import _isolate_payload
from repro.tensor import Tensor


class TestFastPaths:
    def test_immutables_pass_through_by_identity(self):
        for value in (None, 3, 2.5, 1 + 2j, True, "s", b"raw", frozenset({1}), np.float64(1.5)):
            assert _isolate_payload(value) is value

    def test_ndarray_is_buffer_copied(self):
        original = np.zeros(8)
        isolated = _isolate_payload(original)
        assert isolated is not original
        original[:] = 9.0
        assert np.allclose(isolated, 0.0)

    def test_tensor_copies_buffer_and_keeps_flags(self):
        original = Tensor(np.ones(4), requires_grad=True)
        isolated = _isolate_payload(original)
        assert type(isolated) is Tensor
        assert isolated.requires_grad
        original.data[:] = -1.0
        assert np.allclose(isolated.data, 1.0)

    def test_nested_state_dict_stays_on_fast_path(self):
        weights = np.zeros(4)
        nested = np.ones(2)
        payload = {"w": weights, "meta": [nested, (np.arange(3.0),)]}
        isolated = _isolate_payload(payload)
        weights[:] = 5.0
        nested[:] = 5.0
        assert np.allclose(isolated["w"], 0.0)
        assert np.allclose(isolated["meta"][0], 1.0)
        assert np.allclose(isolated["meta"][1][0], np.arange(3.0))

    def test_deepcopy_fallback_for_custom_objects(self):
        class Box:
            def __init__(self):
                self.items = [1, 2]

        box = Box()
        isolated = _isolate_payload(box)
        box.items.append(3)
        assert isolated.items == [1, 2]

    def test_container_subclasses_keep_their_type(self):
        class Tagged(list):
            pass

        payload = Tagged([np.zeros(2)])
        isolated = _isolate_payload(payload)
        assert type(isolated) is Tagged
        payload[0][:] = 4.0
        assert np.allclose(isolated[0], 0.0)


class TestSenderMutationThroughTransport:
    def test_dict_of_arrays_isolated_after_send(self, launch):
        """End-to-end: mutation between send and receive is invisible."""

        def program(comm):
            if comm.rank == 0:
                payload = {"w": np.zeros(3)}
                comm.send(payload, dest=1, tag=1)
                payload["w"][:] = 7.0
                return None
            return comm.recv(source=0, tag=1)

        received = launch(program, 2)[1]
        assert np.allclose(received["w"], 0.0)

    def test_tensor_payload_isolated_after_send(self, launch):
        def program(comm):
            if comm.rank == 0:
                payload = Tensor(np.zeros(3), requires_grad=True)
                comm.send(payload, dest=1, tag=1)
                payload.data[:] = 7.0
                return None
            received = comm.recv(source=0, tag=1)
            return np.asarray(received.data), received.requires_grad

        data, requires_grad = launch(program, 2)[1]
        assert np.allclose(data, 0.0)
        assert requires_grad

"""Process-backend-specific behaviour.

The generic communicator contract is covered by the backend-
parameterized suite (see ``conftest.py``); this file pins what is
unique to the process world: the shared-memory transport's codec and
lifetime protocol, start-method handling, hard-death supervision, and
segment cleanup on every exit path.
"""

import os

import numpy as np
import pytest

from repro import mpi
from repro.exceptions import CommunicatorError
from repro.mpi.shm import (
    SHM_THRESHOLD_BYTES,
    ShmArrayHeader,
    decode_payload,
    discard_header,
    encode_payload,
)


def _shm_segments():
    """Names of live POSIX shm segments created by this interpreter
    family (CPython prefixes anonymous segments with ``psm_``)."""
    try:
        return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


class TestShmCodec:
    def test_small_arrays_take_the_pickle_path(self):
        array = np.zeros(4)
        assert encode_payload(array) is array

    def test_non_array_payloads_pass_through(self):
        for payload in ({"k": 1}, [1, 2], "text", None):
            assert encode_payload(payload) is payload

    def test_object_dtype_never_uses_shm(self):
        array = np.array([{"x": 1}] * 64, dtype=object)
        assert encode_payload(array, threshold=1) is array

    def test_large_array_roundtrip_releases_segment(self):
        before = _shm_segments()
        array = np.arange(4096, dtype=np.float64)  # 32 KiB > threshold
        assert array.nbytes >= SHM_THRESHOLD_BYTES
        header = encode_payload(array)
        assert isinstance(header, ShmArrayHeader)
        assert header.nbytes == array.nbytes
        decoded = decode_payload(header)
        assert decoded.dtype == array.dtype
        assert np.array_equal(decoded, array)
        # Receiver-side decode performs the one-and-only unlink.
        assert _shm_segments() == before

    def test_threshold_is_configurable(self):
        array = np.arange(8, dtype=np.float64)
        header = encode_payload(array, threshold=1)
        assert isinstance(header, ShmArrayHeader)
        assert np.array_equal(decode_payload(header), array)

    def test_noncontiguous_arrays_roundtrip(self):
        base = np.arange(10_000, dtype=np.float64).reshape(100, 100)
        strided = base[::2, ::3]
        header = encode_payload(strided, threshold=1)
        assert isinstance(header, ShmArrayHeader)
        assert np.array_equal(decode_payload(header), strided)

    def test_decode_passes_plain_payloads_through(self):
        assert decode_payload("plain") == "plain"

    def test_discard_header_is_idempotent(self):
        before = _shm_segments()
        header = encode_payload(np.zeros(1 << 12), threshold=1)
        assert isinstance(header, ShmArrayHeader)
        discard_header(header)
        assert _shm_segments() == before
        discard_header(header)  # second release: already gone, no error
        discard_header("not a header")  # non-headers are ignored


def _spawn_program(comm):
    """Module-level so it survives spawn's pickling of the rank program."""
    return comm.allreduce(comm.rank + 1)


class TestProcessWorld:
    def test_closures_supported_under_default_fork(self):
        captured = {"base": 10}

        def program(comm):
            return captured["base"] + comm.rank

        assert mpi.run_parallel(program, 2, backend="processes") == [10, 11]

    def test_spawn_start_method(self):
        if "spawn" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("spawn not available")
        results = mpi.run_parallel(
            _spawn_program, 2, backend="processes", start_method="spawn"
        )
        assert results == [3, 3]

    def test_unknown_backend_rejected(self):
        with pytest.raises(CommunicatorError, match="unknown backend"):
            mpi.run_parallel(lambda c: None, 1, backend="smoke-signals")

    def test_no_segment_leak_after_large_exchange(self):
        before = _shm_segments()

        def program(comm):
            peer = 1 - comm.rank
            payload = np.full(1 << 16, float(comm.rank))  # 512 KiB → shm
            comm.send(payload, dest=peer, tag=1)
            received = comm.recv(source=peer, tag=1)
            return float(received[0])

        assert mpi.run_parallel(program, 2, backend="processes") == [1.0, 0.0]
        assert _shm_segments() == before

    def test_undelivered_segment_released_on_rank_failure(self):
        """A message parked in shm whose receiver dies before recv must
        still be unlinked (worker finally-drain or launcher teardown)."""
        before = _shm_segments()

        def program(comm):
            if comm.rank == 0:
                comm.send(np.zeros(1 << 16), dest=1, tag=1)
                comm.barrier()
                return None
            comm.barrier()  # message is in flight or buffered by now
            raise RuntimeError("receiver died before recv")

        with pytest.raises(RuntimeError, match="receiver died"):
            mpi.run_parallel(program, 2, backend="processes")
        assert _shm_segments() == before

    def test_hard_worker_death_is_detected(self):
        """A rank exiting without reporting (os._exit) must surface as a
        CommunicatorError, not a hang."""

        def program(comm):
            if comm.rank == 0:
                os._exit(3)
            comm.recv(source=0, tag=1, timeout=30.0)

        with pytest.raises(CommunicatorError, match="exit code 3"):
            mpi.run_parallel(program, 2, backend="processes")

    def test_communicator_validates_rank(self):
        with pytest.raises(CommunicatorError):
            mpi.ProcessCommunicator(rank=2, size=2, mailboxes=[])

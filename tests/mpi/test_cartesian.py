"""Cartesian topology tests (both execution backends where ranks run)."""

import pytest

from repro.exceptions import CommunicatorError
from repro.mpi import CartComm, SelfCommunicator, dims_create


class TestDimsCreate:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 6, 8, 12, 16, 30, 64, 97])
    def test_product_equals_size(self, size):
        dims = dims_create(size, 2)
        assert dims[0] * dims[1] == size

    def test_balanced_squares(self):
        assert dims_create(64, 2) == (8, 8)
        assert dims_create(16, 2) == (4, 4)

    def test_rectangles(self):
        assert dims_create(12, 2) == (4, 3)
        assert dims_create(2, 2) == (2, 1)

    def test_three_dims(self):
        dims = dims_create(24, 3)
        assert len(dims) == 3
        assert dims[0] * dims[1] * dims[2] == 24
        assert dims == tuple(sorted(dims, reverse=True))

    def test_prime_size(self):
        assert dims_create(7, 2) == (7, 1)

    def test_invalid_raises(self):
        with pytest.raises(CommunicatorError):
            dims_create(0, 2)
        with pytest.raises(CommunicatorError):
            dims_create(4, 0)


def make_cart(dims, periods=None):
    """A size-1-compatible helper: uses SelfCommunicator when possible,
    otherwise builds coordinate math through a parallel run."""
    comm = SelfCommunicator()
    total = 1
    for d in dims:
        total *= d
    if total == 1:
        return CartComm(comm, dims, periods)
    raise AssertionError("use run_parallel for multi-rank carts")


class TestCoordinateMath:
    def test_roundtrip_all_ranks(self, launch):
        def program(comm):
            cart = CartComm(comm, (2, 3))
            assert cart.rank_of(cart.coords_of(comm.rank)) == comm.rank
            return cart.coords

        coords = launch(program, 6)
        assert coords == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_dims_mismatch_raises(self, launch):
        def program(comm):
            with pytest.raises(CommunicatorError):
                CartComm(comm, (2, 2))  # needs 4 ranks, world has 2
            return True

        assert all(launch(program, 2))

    def test_shift_non_periodic(self, launch):
        def program(comm):
            cart = CartComm(comm, (1, 3))
            lo, hi = cart.shift(axis=1)
            return (lo, hi)

        shifts = launch(program, 3)
        assert shifts == [(None, 1), (0, 2), (1, None)]

    def test_shift_periodic_wraps(self, launch):
        def program(comm):
            cart = CartComm(comm, (1, 3), periods=(False, True))
            return cart.shift(axis=1)

        shifts = launch(program, 3)
        assert shifts == [(2, 1), (0, 2), (1, 0)]

    def test_neighbours_interior_vs_corner(self, launch):
        def program(comm):
            cart = CartComm(comm, (3, 3))
            return len(cart.neighbours())

        counts = launch(program, 9)
        # Corner ranks have 2 neighbours, edges 3, centre 4.
        assert counts == [2, 3, 2, 3, 4, 3, 2, 3, 2]

    def test_out_of_range_coordinate_raises(self):
        cart = make_cart((1, 1))
        with pytest.raises(CommunicatorError):
            cart.rank_of((0, 5))
        with pytest.raises(CommunicatorError):
            cart.coords_of(9)

    def test_bad_axis_raises(self):
        cart = make_cart((1, 1))
        with pytest.raises(CommunicatorError):
            cart.shift(axis=5)


class TestCartCommunication:
    def test_messaging_through_cart(self, launch):
        """CartComm delegates pt2pt and collectives to its parent."""

        def program(comm):
            cart = CartComm(comm, dims_create(comm.size, 2))
            _, right = cart.shift(axis=1)
            left, _ = cart.shift(axis=1)
            if right is not None:
                cart.send(cart.coords, dest=right, tag=1)
            received = None
            if left is not None:
                received = cart.recv(source=left, tag=1)
            total = cart.allreduce(1)
            assert total == comm.size
            return received

        results = launch(program, 6)
        assert any(r is not None for r in results)

"""Collective operations over the generic point-to-point layer
(both execution backends)."""

import numpy as np
import pytest

from repro import mpi
from repro.exceptions import CommunicatorError

SIZES = [1, 2, 3, 5, 8]


@pytest.mark.parametrize("size", SIZES)
class TestCollectives:
    def test_barrier_completes(self, size, launch):
        def program(comm):
            for _ in range(3):
                comm.barrier()
            return True

        assert all(launch(program, size))

    def test_bcast(self, size, launch):
        def program(comm):
            payload = {"v": 7} if comm.rank == 0 else None
            return comm.bcast(payload, root=0)

        assert launch(program, size) == [{"v": 7}] * size

    def test_bcast_nonzero_root(self, size, launch):
        root = size - 1

        def program(comm):
            payload = "hi" if comm.rank == root else None
            return comm.bcast(payload, root=root)

        assert launch(program, size) == ["hi"] * size

    def test_gather(self, size, launch):
        def program(comm):
            return comm.gather(comm.rank**2, root=0)

        results = launch(program, size)
        assert results[0] == [r**2 for r in range(size)]
        assert all(r is None for r in results[1:])

    def test_scatter(self, size, launch):
        def program(comm):
            payloads = [i * 10 for i in range(size)] if comm.rank == 0 else None
            return comm.scatter(payloads, root=0)

        assert launch(program, size) == [i * 10 for i in range(size)]

    def test_allgather(self, size, launch):
        def program(comm):
            return comm.allgather(chr(ord("a") + comm.rank))

        expected = [chr(ord("a") + i) for i in range(size)]
        assert launch(program, size) == [expected] * size

    def test_allreduce_sum(self, size, launch):
        def program(comm):
            return comm.allreduce(comm.rank + 1)

        assert launch(program, size) == [size * (size + 1) // 2] * size

    def test_allreduce_array(self, size, launch):
        def program(comm):
            return comm.allreduce(np.full(3, float(comm.rank)), op=mpi.MAX)

        for result in launch(program, size):
            assert np.allclose(result, size - 1)

    def test_reduce_min(self, size, launch):
        def program(comm):
            return comm.reduce(10 - comm.rank, op=mpi.MIN, root=0)

        results = launch(program, size)
        assert results[0] == 10 - (size - 1)

    def test_alltoall(self, size, launch):
        def program(comm):
            outgoing = [(comm.rank, j) for j in range(size)]
            return comm.alltoall(outgoing)

        results = launch(program, size)
        for rank, incoming in enumerate(results):
            assert incoming == [(j, rank) for j in range(size)]

    def test_interleaved_collectives_and_pt2pt(self, size, launch):
        """Collectives use reserved tags: user traffic cannot collide."""

        def program(comm):
            if size > 1:
                comm.send(comm.rank, dest=(comm.rank + 1) % size, tag=0)
            total = comm.allreduce(1)
            if size > 1:
                neighbour = comm.recv(source=(comm.rank - 1) % size, tag=0)
                assert neighbour == (comm.rank - 1) % size
            return total

        assert launch(program, size) == [size] * size


class TestReduceOps:
    def test_prod(self, launch):
        def program(comm):
            return comm.allreduce(comm.rank + 1, op=mpi.PROD)

        assert launch(program, 4) == [24] * 4

    def test_logical_ops(self, launch):
        def program(comm):
            any_true = comm.allreduce(comm.rank == 2, op=mpi.LOR)
            all_true = comm.allreduce(comm.rank < 10, op=mpi.LAND)
            return bool(any_true), bool(all_true)

        assert launch(program, 4) == [(True, True)] * 4

    def test_reduce_deterministic_order(self, launch):
        """Reduction combines payloads in rank order (reproducibility)."""

        def program(comm):
            return comm.reduce([comm.rank], op=mpi.ReduceOp("concat", lambda a, b: a + b), root=0)

        results = launch(program, 5)
        assert results[0] == [0, 1, 2, 3, 4]


class TestValidation:
    def test_scatter_wrong_count_raises(self, launch):
        def program(comm):
            if comm.rank == 0:
                with pytest.raises(CommunicatorError):
                    comm.scatter([1, 2, 3], root=0)  # size is 2
            return True

        # Use size 1 to avoid hanging the non-root ranks.
        def solo(comm):
            with pytest.raises(CommunicatorError):
                comm.scatter([1, 2], root=0)
            return True

        assert all(launch(solo, 1))

    def test_alltoall_wrong_count_raises(self, launch):
        def program(comm):
            with pytest.raises(CommunicatorError):
                comm.alltoall([1, 2, 3])
            return True

        assert all(launch(program, 1))

    def test_bad_root_raises(self, launch):
        def program(comm):
            with pytest.raises(CommunicatorError):
                comm.bcast("x", root=7)
            return True

        assert all(launch(program, 2))

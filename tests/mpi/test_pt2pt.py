"""Point-to-point messaging semantics (both execution backends)."""

import numpy as np
import pytest

from repro import mpi
from repro.exceptions import CommunicatorError, DeadlockError


class TestSendRecv:
    def test_basic_pair(self, launch):
        def program(comm):
            if comm.rank == 0:
                comm.send({"x": 42}, dest=1, tag=3)
                return None
            return comm.recv(source=0, tag=3)

        results = launch(program, 2)
        assert results[1] == {"x": 42}

    def test_numpy_payload(self, launch):
        def program(comm):
            if comm.rank == 0:
                comm.send(np.arange(5.0), dest=1, tag=1)
                return None
            return comm.recv(source=0, tag=1)

        results = launch(program, 2)
        assert np.allclose(results[1], np.arange(5.0))

    def test_tag_selectivity(self, launch):
        def program(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)
                comm.send("b", dest=1, tag=2)
                return None
            # Receive tag 2 first even though tag 1 arrived first.
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        assert launch(program, 2)[1] == ("a", "b")

    def test_any_source_any_tag(self, launch):
        def program(comm):
            if comm.rank == 2:
                got = set()
                for _ in range(2):
                    payload, status = comm.recv_with_status(
                        source=mpi.ANY_SOURCE, tag=mpi.ANY_TAG
                    )
                    got.add((status.source, status.tag, payload))
                return got
            comm.send(f"from{comm.rank}", dest=2, tag=comm.rank + 10)
            return None

        result = launch(program, 3)[2]
        assert result == {(0, 10, "from0"), (1, 11, "from1")}

    def test_non_overtaking_same_source_tag(self, launch):
        """MPI guarantees message order per (source, dest, tag)."""

        def program(comm):
            if comm.rank == 0:
                for i in range(20):
                    comm.send(i, dest=1, tag=5)
                return None
            return [comm.recv(source=0, tag=5) for _ in range(20)]

        assert launch(program, 2)[1] == list(range(20))

    def test_message_isolation(self, launch):
        """Sender-side mutation after send is invisible to the receiver."""

        def program(comm):
            if comm.rank == 0:
                payload = np.zeros(4)
                comm.send(payload, dest=1, tag=1)
                payload[:] = 99.0
                return None
            return comm.recv(source=0, tag=1)

        assert np.allclose(launch(program, 2)[1], 0.0)

    def test_sendrecv_exchange(self, launch):
        def program(comm):
            peer = 1 - comm.rank
            return comm.sendrecv(comm.rank * 10, dest=peer, recv_source=peer)

        assert launch(program, 2) == [10, 0]


class TestBufferAPI:
    def test_Send_Recv_roundtrip(self, launch):
        def program(comm):
            if comm.rank == 0:
                comm.Send(np.arange(6, dtype=np.float64), dest=1, tag=2)
                return None
            buffer = np.empty(6)
            status = comm.Recv(buffer, source=0, tag=2)
            return buffer, status.source

        buffer, source = launch(program, 2)[1]
        assert np.allclose(buffer, np.arange(6.0))
        assert source == 0

    def test_Recv_shape_mismatch_raises(self, launch):
        def program(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(3), dest=1, tag=1)
                return None
            with pytest.raises(CommunicatorError):
                comm.Recv(np.empty(5), source=0, tag=1)
            return True

        assert launch(program, 2)[1]


class TestValidation:
    def test_send_out_of_range_raises(self, launch):
        def program(comm):
            with pytest.raises(CommunicatorError):
                comm.send("x", dest=5)
            return True

        assert all(launch(program, 2))

    def test_reserved_tag_rejected(self, launch):
        def program(comm):
            with pytest.raises(CommunicatorError):
                comm.send("x", dest=0, tag=mpi.MAX_USER_TAG)
            return True

        assert all(launch(program, 1))

    def test_negative_tag_rejected_for_send(self, launch):
        def program(comm):
            with pytest.raises(CommunicatorError):
                comm.send("x", dest=0, tag=-3)
            return True

        assert all(launch(program, 1))


class TestDeadlockWatchdog:
    def test_mutual_recv_detected(self, launch):
        def program(comm):
            comm.recv(source=1 - comm.rank, tag=1)

        with pytest.raises(DeadlockError):
            launch(program, 2, deadlock_timeout=0.2)

    def test_recv_timeout_override(self, launch):
        def program(comm):
            if comm.rank == 0:
                with pytest.raises(DeadlockError):
                    comm.recv(source=1, tag=9, timeout=0.1)
            return True

        assert all(launch(program, 2))

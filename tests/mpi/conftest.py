"""Shared fixtures for the communicator contract suite.

Every semantic guarantee of the runtime (ordering, wildcards,
collectives, topology, failure handling) must hold identically on the
thread backend and the process backend, so the contract tests take the
``launch`` fixture instead of calling ``mpi.run_parallel`` directly —
pytest then runs each of them once per backend.

Tests that are inherently single-backend (direct ``MessageRouter``
inspection, in-process identity checks, ``threading`` synchronisation
across ranks) keep calling ``mpi.run_parallel`` and are not
parameterized.
"""

import pytest

from repro import mpi


@pytest.fixture(params=list(mpi.BACKENDS), ids=lambda backend: f"backend={backend}")
def launch(request):
    """``run_parallel`` bound to one execution backend."""
    backend = request.param

    def run(fn, size, **kwargs):
        kwargs.setdefault("backend", backend)
        return mpi.run_parallel(fn, size, **kwargs)

    run.backend = backend
    return run

"""Launcher (run_parallel) tests.

Backend-agnostic behaviour goes through the ``launch`` fixture; tests
that rely on in-process state (shared ``threading`` primitives, object
identity across ranks) pin the thread backend explicitly.
"""

import threading

import pytest

from repro import mpi
from repro.exceptions import CommunicatorError, DeadlockError
from repro.mpi import SelfCommunicator


class TestSPMD:
    def test_results_in_rank_order(self, launch):
        results = launch(lambda comm: comm.rank * 2, 5)
        assert results == [0, 2, 4, 6, 8]

    def test_world_size_visible(self, launch):
        assert launch(lambda comm: comm.size, 3) == [3, 3, 3]

    def test_get_rank_get_size_aliases(self, launch):
        def program(comm):
            return comm.Get_rank(), comm.Get_size()

        assert launch(program, 2) == [(0, 2), (1, 2)]

    def test_ranks_run_concurrently(self):
        """Blocking receives must not serialize independent ranks.

        Thread backend only: a shared ``threading.Barrier`` can only
        synchronise ranks living in the same process.  (Process-backend
        concurrency is exercised by the pt2pt exchange patterns, which
        deadlock under serialized execution.)
        """
        barrier = threading.Barrier(3, timeout=10.0)

        def program(comm):
            barrier.wait()  # passes only if all three threads are live
            return True

        assert all(mpi.run_parallel(program, 3))


class TestMPMD:
    def test_one_callable_per_rank(self, launch):
        fns = [lambda comm, i=i: f"rank{i}" for i in range(3)]
        assert launch(fns, 3) == ["rank0", "rank1", "rank2"]

    def test_wrong_count_raises(self, launch):
        with pytest.raises(CommunicatorError):
            launch([lambda c: None], 2)


class TestErrorPropagation:
    def test_rank_exception_reraised(self, launch):
        def program(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 exploded")
            comm.barrier()

        with pytest.raises(ValueError, match="rank 1 exploded"):
            launch(program, 3)

    def test_original_error_preferred_over_induced_deadlock(self, launch):
        def program(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=1)  # dies with induced DeadlockError
            raise RuntimeError("root cause")

        with pytest.raises(RuntimeError, match="root cause"):
            launch(program, 2)

    def test_pure_deadlock_raises_deadlock_error(self, launch):
        def program(comm):
            comm.recv(source=(comm.rank + 1) % comm.size, tag=0)

        with pytest.raises(DeadlockError):
            launch(program, 2, deadlock_timeout=0.2)

    def test_invalid_size_raises(self):
        with pytest.raises(CommunicatorError):
            mpi.run_parallel(lambda c: None, 0)

    def test_unknown_backend_raises(self):
        with pytest.raises(CommunicatorError, match="unknown backend"):
            mpi.run_parallel(lambda c: None, 1, backend="carrier-pigeon")


class TestIsolationToggle:
    def test_isolation_can_be_disabled(self):
        """With isolation off, large read-only payloads pass by reference.

        Thread backend only: object identity across ranks is meaningless
        once ranks live in separate address spaces.
        """
        import numpy as np

        big = np.ones(10)

        def program(comm):
            if comm.rank == 0:
                comm.send(big, dest=1, tag=1)
                return None
            received = comm.recv(source=0, tag=1)
            return received is big

        assert mpi.run_parallel(program, 2, isolate_messages=False)[1]


class TestSelfCommunicator:
    def test_identity(self):
        comm = SelfCommunicator()
        assert comm.rank == 0
        assert comm.size == 1

    def test_collectives_degenerate(self):
        comm = SelfCommunicator()
        assert comm.allreduce(5) == 5
        assert comm.bcast("x") == "x"
        assert comm.gather(7) == [7]
        assert comm.scatter([9]) == 9
        assert comm.allgather(1) == [1]
        assert comm.alltoall(["self"]) == ["self"]
        comm.barrier()  # must not block

    def test_self_messaging(self):
        comm = SelfCommunicator()
        comm.send("loop", dest=0, tag=2)
        assert comm.recv(source=0, tag=2) == "loop"

    def test_irecv_on_self(self):
        comm = SelfCommunicator()
        request = comm.irecv(source=0, tag=3)
        done, _ = request.test()
        assert not done
        comm.send(1, dest=0, tag=3)
        assert request.wait() == 1

"""ConvLSTM tests."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn import ConvLSTM, ConvLSTMCell
from repro.tensor import Tensor


class TestConvLSTMCell:
    def test_output_shapes(self, rng):
        cell = ConvLSTMCell(4, 8, kernel_size=3, rng=rng)
        x = Tensor(rng.standard_normal((2, 4, 10, 10)))
        hidden, cell_state = cell(x)
        assert hidden.shape == (2, 8, 10, 10)
        assert cell_state.shape == (2, 8, 10, 10)

    def test_state_threads_through_steps(self, rng):
        cell = ConvLSTMCell(2, 4, kernel_size=3, rng=rng)
        x1 = Tensor(rng.standard_normal((1, 2, 6, 6)))
        x2 = Tensor(rng.standard_normal((1, 2, 6, 6)))
        state1 = cell(x1)
        hidden2, _ = cell(x2, state1)
        # Same input with fresh state must give a different hidden.
        hidden_fresh, _ = cell(x2)
        assert not np.allclose(hidden2.numpy(), hidden_fresh.numpy())

    def test_hidden_bounded_by_tanh(self, rng):
        cell = ConvLSTMCell(2, 4, kernel_size=3, rng=rng)
        x = Tensor(10.0 * rng.standard_normal((1, 2, 6, 6)))
        hidden, _ = cell(x)
        assert np.all(np.abs(hidden.numpy()) <= 1.0)

    def test_forget_bias_initialized_open(self, rng):
        cell = ConvLSTMCell(2, 4, kernel_size=3, rng=rng, forget_bias=1.0)
        assert np.allclose(cell.bias.data[4:8], 1.0)
        assert np.allclose(cell.bias.data[:4], 0.0)

    def test_gradients_flow_through_time(self, rng):
        cell = ConvLSTMCell(2, 3, kernel_size=3, rng=rng)
        x = Tensor(rng.standard_normal((1, 2, 5, 5)))
        state = cell(x)
        state = cell(x, state)
        state[0].sum().backward()
        assert cell.weight.grad is not None
        assert np.any(cell.weight.grad != 0.0)

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            ConvLSTMCell(0, 4, rng=rng)
        with pytest.raises(ConfigurationError):
            ConvLSTMCell(2, 4, kernel_size=4, rng=rng)
        cell = ConvLSTMCell(2, 4, kernel_size=3, rng=rng)
        with pytest.raises(ShapeError):
            cell(Tensor(rng.standard_normal((2, 5, 5))))
        with pytest.raises(ShapeError):
            cell(Tensor(rng.standard_normal((1, 3, 5, 5))))


class TestConvLSTM:
    def test_last_hidden_shape(self, rng):
        layer = ConvLSTM(4, 6, kernel_size=3, rng=rng)
        seq = Tensor(rng.standard_normal((2, 5, 4, 8, 8)))
        out = layer(seq)
        assert out.shape == (2, 6, 8, 8)

    def test_return_sequence(self, rng):
        layer = ConvLSTM(4, 6, kernel_size=3, rng=rng)
        seq = Tensor(rng.standard_normal((1, 3, 4, 8, 8)))
        hiddens = layer(seq, return_sequence=True)
        assert len(hiddens) == 3
        assert all(h.shape == (1, 6, 8, 8) for h in hiddens)

    def test_order_matters(self, rng):
        """A recurrent model must distinguish temporal orderings."""
        layer = ConvLSTM(2, 4, kernel_size=3, rng=rng)
        seq = rng.standard_normal((1, 4, 2, 6, 6))
        forward = layer(Tensor(seq)).numpy()
        backward = layer(Tensor(seq[:, ::-1].copy())).numpy()
        assert not np.allclose(forward, backward)

    def test_wrong_rank_raises(self, rng):
        layer = ConvLSTM(2, 4, kernel_size=3, rng=rng)
        with pytest.raises(ShapeError):
            layer(Tensor(rng.standard_normal((1, 2, 6, 6))))

"""Linear-layer tests."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn import Linear
from repro.tensor import Tensor


class TestLinear:
    def test_affine_map(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.standard_normal((4, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)

    def test_batched_leading_dims(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.standard_normal((5, 4, 3))
        assert layer(Tensor(x)).shape == (5, 4, 2)

    def test_no_bias(self, rng):
        layer = Linear(3, 2, bias=False, rng=rng)
        assert layer.bias is None
        x = rng.standard_normal((1, 3))
        assert np.allclose(layer(Tensor(x)).data, x @ layer.weight.data.T)

    def test_gradients_flow(self, rng):
        layer = Linear(3, 2, rng=rng)
        layer(Tensor(rng.standard_normal((4, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        assert layer.weight.grad.shape == (2, 3)

    def test_bad_features_raise(self, rng):
        with pytest.raises(ConfigurationError):
            Linear(0, 2, rng=rng)
        with pytest.raises(ConfigurationError):
            Linear(2, 0, rng=rng)

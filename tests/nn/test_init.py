"""Initializer tests."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn import (
    compute_fans,
    get_initializer,
    glorot_normal,
    glorot_uniform,
    he_normal,
    he_uniform,
    leaky_relu_gain,
)


class TestFans:
    def test_linear_fans(self):
        assert compute_fans((8, 4)) == (4, 8)

    def test_conv_fans_include_receptive_field(self):
        # (out, in, kh, kw): fan_in = in * kh * kw
        assert compute_fans((6, 4, 5, 5)) == (4 * 25, 6 * 25)

    def test_too_few_dims_raises(self):
        with pytest.raises(ConfigurationError):
            compute_fans((5,))


class TestGlorot:
    def test_uniform_bounds(self, rng):
        shape = (16, 8)
        limit = math.sqrt(6.0 / (8 + 16))
        w = glorot_uniform(shape, rng)
        assert w.shape == shape
        assert np.all(np.abs(w) <= limit)

    def test_normal_std(self, rng):
        w = glorot_normal((200, 100), rng)
        expected = math.sqrt(2.0 / 300)
        assert abs(w.std() - expected) / expected < 0.1

    def test_deterministic_with_seed(self):
        a = glorot_uniform((4, 4), np.random.default_rng(3))
        b = glorot_uniform((4, 4), np.random.default_rng(3))
        assert np.array_equal(a, b)


class TestHe:
    def test_gain(self):
        assert np.isclose(leaky_relu_gain(0.0), math.sqrt(2.0))
        assert leaky_relu_gain(0.01) < leaky_relu_gain(0.0)

    def test_uniform_bounds(self, rng):
        w = he_uniform((16, 8), rng, negative_slope=0.0)
        limit = math.sqrt(2.0) * math.sqrt(3.0 / 8)
        assert np.all(np.abs(w) <= limit)

    def test_normal_std(self, rng):
        w = he_normal((300, 100), rng)
        expected = math.sqrt(2.0 / 100)
        assert abs(w.std() - expected) / expected < 0.1


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["glorot_uniform", "glorot_normal", "he_uniform", "he_normal"]
    )
    def test_lookup(self, name, rng):
        w = get_initializer(name)((4, 4), rng)
        assert w.shape == (4, 4)

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_initializer("orthogonal")

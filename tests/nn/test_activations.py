"""Activation-module tests."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn import Identity, LeakyReLU, ReLU, Sigmoid, Tanh, get_activation
from repro.tensor import Tensor


class TestModules:
    def test_relu(self):
        assert np.allclose(ReLU()(Tensor([-1.0, 2.0])).data, [0.0, 2.0])

    def test_leaky_relu_paper_epsilon(self):
        layer = LeakyReLU()  # default 0.01 = the paper's epsilon
        assert layer.negative_slope == 0.01
        assert np.allclose(layer(Tensor([-1.0])).data, [-0.01])

    def test_leaky_relu_negative_slope_validation(self):
        with pytest.raises(ConfigurationError):
            LeakyReLU(-0.5)

    def test_sigmoid_midpoint(self):
        assert np.isclose(Sigmoid()(Tensor([0.0])).item(), 0.5)

    def test_tanh_odd(self, rng):
        x = rng.standard_normal(5)
        layer = Tanh()
        assert np.allclose(layer(Tensor(x)).data, -layer(Tensor(-x)).data)

    def test_identity(self, rng):
        x = rng.standard_normal((3, 3))
        assert np.array_equal(Identity()(Tensor(x)).data, x)

    def test_activations_have_no_parameters(self):
        for layer in (ReLU(), LeakyReLU(), Sigmoid(), Tanh(), Identity()):
            assert layer.parameters() == []


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_activation("relu"), ReLU)
        layer = get_activation("leaky_relu", negative_slope=0.2)
        assert isinstance(layer, LeakyReLU)
        assert layer.negative_slope == 0.2

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_activation("swish")

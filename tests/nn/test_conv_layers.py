"""Conv2d / ConvTranspose2d layer tests."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn import Conv2d, ConvTranspose2d
from repro.tensor import Tensor


class TestConv2d:
    def test_same_padding_preserves_size(self, rng):
        layer = Conv2d(4, 6, kernel_size=5, padding="same", rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 4, 16, 16))))
        assert out.shape == (2, 6, 16, 16)

    def test_valid_padding_shrinks(self, rng):
        layer = Conv2d(4, 6, kernel_size=5, padding="valid", rng=rng)
        out = layer(Tensor(rng.standard_normal((1, 4, 16, 16))))
        assert out.shape == (1, 6, 12, 12)

    def test_explicit_padding(self, rng):
        layer = Conv2d(1, 1, kernel_size=3, padding=2, rng=rng)
        out = layer(Tensor(rng.standard_normal((1, 1, 8, 8))))
        assert out.shape == (1, 1, 10, 10)

    def test_output_shape_helper_matches(self, rng):
        layer = Conv2d(2, 3, kernel_size=5, stride=2, padding=1, rng=rng)
        out = layer(Tensor(rng.standard_normal((1, 2, 17, 13))))
        assert out.shape[-2:] == layer.output_shape(17, 13)

    def test_no_bias(self, rng):
        layer = Conv2d(2, 3, kernel_size=3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_same_padding_even_kernel_raises(self, rng):
        with pytest.raises(ConfigurationError):
            Conv2d(1, 1, kernel_size=4, padding="same", rng=rng)

    def test_unknown_padding_mode_raises(self, rng):
        with pytest.raises(ConfigurationError):
            Conv2d(1, 1, kernel_size=3, padding="reflect", rng=rng)

    def test_negative_padding_raises(self, rng):
        with pytest.raises(ConfigurationError):
            Conv2d(1, 1, kernel_size=3, padding=-1, rng=rng)

    def test_bad_channels_raise(self, rng):
        with pytest.raises(ConfigurationError):
            Conv2d(0, 1, rng=rng)
        with pytest.raises(ConfigurationError):
            Conv2d(1, -1, rng=rng)

    def test_weight_shape(self, rng):
        layer = Conv2d(3, 7, kernel_size=5, rng=rng)
        assert layer.weight.shape == (7, 3, 5, 5)
        assert layer.bias.shape == (7,)

    def test_reproducible_init(self):
        a = Conv2d(2, 2, kernel_size=3, rng=np.random.default_rng(5))
        b = Conv2d(2, 2, kernel_size=3, rng=np.random.default_rng(5))
        assert np.array_equal(a.weight.data, b.weight.data)

    def test_gradients_flow(self, rng):
        layer = Conv2d(1, 1, kernel_size=3, padding="same", rng=rng)
        layer(Tensor(rng.standard_normal((1, 1, 5, 5)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestConvTranspose2d:
    def test_restores_valid_conv_shrinkage(self, rng):
        down = Conv2d(1, 2, kernel_size=5, padding=0, rng=rng)
        up = ConvTranspose2d(2, 1, kernel_size=5, rng=rng)
        x = Tensor(rng.standard_normal((1, 1, 12, 12)))
        assert up(down(x)).shape == (1, 1, 12, 12)

    def test_output_shape_helper(self, rng):
        layer = ConvTranspose2d(2, 3, kernel_size=4, stride=2, padding=1, rng=rng)
        out = layer(Tensor(rng.standard_normal((1, 2, 8, 8))))
        assert out.shape[-2:] == layer.output_shape(8, 8)

    def test_weight_layout(self, rng):
        layer = ConvTranspose2d(3, 5, kernel_size=3, rng=rng)
        assert layer.weight.shape == (3, 5, 3, 3)

    def test_bad_channels_raise(self, rng):
        with pytest.raises(ConfigurationError):
            ConvTranspose2d(0, 1, rng=rng)

"""BatchNorm2d / Dropout tests."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn import BatchNorm2d, Dropout
from repro.tensor import Tensor


class TestBatchNorm2d:
    def test_normalizes_batch_statistics(self, rng):
        layer = BatchNorm2d(3, affine=False)
        x = Tensor(rng.standard_normal((8, 3, 6, 6)) * 5.0 + 2.0)
        out = layer(x).numpy()
        for ch in range(3):
            assert abs(out[:, ch].mean()) < 1e-10
            assert abs(out[:, ch].std() - 1.0) < 1e-3

    def test_affine_parameters_trainable(self, rng):
        layer = BatchNorm2d(2)
        x = Tensor(rng.standard_normal((4, 2, 5, 5)))
        layer(x).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_eval_uses_running_statistics(self, rng):
        layer = BatchNorm2d(2, affine=False, momentum=1.0)
        x = Tensor(rng.standard_normal((16, 2, 5, 5)) * 3.0 + 1.0)
        layer(x)  # one training pass fixes running stats (momentum=1)
        layer.eval()
        # A different batch normalized with the stored stats: the first
        # batch itself should come out ~standardized.
        out = layer(x).numpy()
        for ch in range(2):
            assert abs(out[:, ch].mean()) < 0.1
            assert abs(out[:, ch].std() - 1.0) < 0.1

    def test_running_stats_updated_incrementally(self, rng):
        layer = BatchNorm2d(1, momentum=0.1)
        before = layer.running_mean.copy()
        layer(Tensor(rng.standard_normal((4, 1, 4, 4)) + 10.0))
        assert not np.allclose(layer.running_mean, before)
        assert layer.running_mean[0] > 0.5  # moved towards ~10 * 0.1

    def test_gradient_flows_to_input(self, rng):
        layer = BatchNorm2d(2)
        x = Tensor(rng.standard_normal((4, 2, 3, 3)), requires_grad=True)
        (layer(x) ** 2).sum().backward()
        assert x.grad is not None

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            BatchNorm2d(0)
        with pytest.raises(ConfigurationError):
            BatchNorm2d(2, eps=0.0)
        with pytest.raises(ConfigurationError):
            BatchNorm2d(2, momentum=0.0)
        layer = BatchNorm2d(2)
        with pytest.raises(ShapeError):
            layer(Tensor(rng.standard_normal((4, 3, 5, 5))))
        with pytest.raises(ShapeError):
            layer(Tensor(rng.standard_normal((4, 5, 5))))


class TestDropout:
    def test_identity_in_eval_mode(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = Tensor(rng.standard_normal((4, 4)))
        assert np.array_equal(layer(x).numpy(), x.numpy())

    def test_zero_probability_is_identity(self, rng):
        layer = Dropout(0.0, rng=rng)
        x = Tensor(rng.standard_normal((4, 4)))
        assert np.array_equal(layer(x).numpy(), x.numpy())

    def test_drops_and_rescales(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        out = layer(x).numpy()
        dropped = np.mean(out == 0.0)
        assert 0.4 < dropped < 0.6
        # Inverted dropout: surviving activations scaled by 1/keep.
        assert np.allclose(out[out != 0.0], 2.0)
        # Expected value preserved.
        assert abs(out.mean() - 1.0) < 0.05

    def test_gradient_masked_consistently(self):
        layer = Dropout(0.5, rng=np.random.default_rng(1))
        x = Tensor(np.ones((50, 50)), requires_grad=True)
        out = layer(x)
        out.sum().backward()
        # Gradient is zero exactly where the activation was dropped.
        assert np.array_equal(x.grad == 0.0, out.numpy() == 0.0)

    def test_reproducible_with_seeded_rng(self):
        x = Tensor(np.ones((10, 10)))
        a = Dropout(0.3, rng=np.random.default_rng(7))(x).numpy()
        b = Dropout(0.3, rng=np.random.default_rng(7))(x).numpy()
        assert np.array_equal(a, b)

    def test_invalid_probability_raises(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)
        with pytest.raises(ConfigurationError):
            Dropout(-0.1)

"""Property-based tests over random network architectures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Conv2d, ConvTranspose2d, LeakyReLU, Linear, Sequential
from repro.tensor import Tensor


@st.composite
def random_cnn(draw):
    """A random small CNN: channel chain + kernel size + seed."""
    depth = draw(st.integers(1, 3))
    channels = [draw(st.integers(1, 5)) for _ in range(depth + 1)]
    kernel = draw(st.sampled_from([1, 3, 5]))
    seed = draw(st.integers(0, 2**31 - 1))
    return channels, kernel, seed


def build(channels, kernel, seed, padding="same"):
    rng = np.random.default_rng(seed)
    layers = []
    for cin, cout in zip(channels, channels[1:]):
        layers.append(Conv2d(cin, cout, kernel_size=kernel, padding=padding, rng=rng))
        layers.append(LeakyReLU(0.01))
    return Sequential(*layers)


@given(random_cnn())
@settings(max_examples=30, deadline=None)
def test_state_dict_roundtrip_preserves_forward(arch):
    channels, kernel, seed = arch
    net_a = build(channels, kernel, seed)
    net_b = build(channels, kernel, seed + 1)  # different weights
    net_b.load_state_dict(net_a.state_dict())
    x = Tensor(np.random.default_rng(0).standard_normal((2, channels[0], 8, 8)))
    assert np.allclose(net_a(x).numpy(), net_b(x).numpy())


@given(random_cnn())
@settings(max_examples=30, deadline=None)
def test_same_padding_preserves_spatial_size(arch):
    channels, kernel, seed = arch
    net = build(channels, kernel, seed)
    x = Tensor(np.random.default_rng(1).standard_normal((1, channels[0], 9, 7)))
    out = net(x)
    assert out.shape == (1, channels[-1], 9, 7)


@given(random_cnn())
@settings(max_examples=30, deadline=None)
def test_every_parameter_receives_gradient(arch):
    channels, kernel, seed = arch
    net = build(channels, kernel, seed)
    x = Tensor(np.random.default_rng(2).standard_normal((1, channels[0], 8, 8)))
    (net(x) ** 2).sum().backward()
    for name, param in net.named_parameters():
        assert param.grad is not None, name
        assert param.grad.shape == param.data.shape


@given(
    st.integers(1, 4),
    st.integers(1, 4),
    st.sampled_from([3, 5]),
    st.integers(6, 12),
)
@settings(max_examples=30, deadline=None)
def test_transpose_conv_inverts_valid_conv_shape(cin, cout, kernel, size):
    """ConvTranspose2d(k) restores exactly what Conv2d(k, valid) removed."""
    rng = np.random.default_rng(0)
    down = Conv2d(cin, cout, kernel_size=kernel, padding=0, rng=rng)
    up = ConvTranspose2d(cout, cin, kernel_size=kernel, rng=rng)
    x = Tensor(rng.standard_normal((1, cin, size, size)))
    assert up(down(x)).shape == x.shape


@given(st.integers(1, 6), st.integers(1, 6), st.integers(1, 5))
@settings(max_examples=30, deadline=None)
def test_linear_parameter_count(in_features, out_features, batch):
    rng = np.random.default_rng(0)
    layer = Linear(in_features, out_features, rng=rng)
    assert layer.num_parameters() == in_features * out_features + out_features
    x = Tensor(rng.standard_normal((batch, in_features)))
    assert layer(x).shape == (batch, out_features)


@given(random_cnn())
@settings(max_examples=20, deadline=None)
def test_zero_grad_resets_everything(arch):
    channels, kernel, seed = arch
    net = build(channels, kernel, seed)
    x = Tensor(np.random.default_rng(3).standard_normal((1, channels[0], 6, 6)))
    net(x).sum().backward()
    net.zero_grad()
    assert all(p.grad is None for p in net.parameters())

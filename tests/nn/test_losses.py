"""Loss-function tests, including the paper's Eq. (7) MAPE."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn import HuberLoss, MAELoss, MAPELoss, MSELoss, get_loss
from repro.tensor import Tensor


class TestMSE:
    def test_value(self):
        loss = MSELoss()(Tensor([1.0, 3.0]), Tensor([0.0, 0.0]))
        assert np.isclose(loss.item(), (1.0 + 9.0) / 2.0)

    def test_zero_at_match(self, rng):
        x = rng.standard_normal((4, 4))
        assert MSELoss()(Tensor(x), Tensor(x)).item() == 0.0

    def test_gradient(self):
        pred = Tensor([2.0], requires_grad=True)
        MSELoss()(pred, Tensor([0.0])).backward()
        assert np.allclose(pred.grad, [4.0])


class TestMAE:
    def test_value(self):
        loss = MAELoss()(Tensor([1.0, -3.0]), Tensor([0.0, 0.0]))
        assert np.isclose(loss.item(), 2.0)


class TestMAPE:
    def test_eq7_value(self):
        # Eq. (7): (100/m) * sum |(pred - target)/target|
        pred = Tensor([1.1, 2.0])
        target = Tensor([1.0, 2.0])
        assert np.isclose(MAPELoss()(pred, target).item(), 5.0)

    def test_scale_invariance(self):
        """MAPE is invariant to rescaling both pred and target — the
        property the paper cites for data spanning magnitudes."""
        pred = Tensor([1.1, 0.011])
        target = Tensor([1.0, 0.01])
        per_pair = MAPELoss()(pred, target).item()
        assert np.isclose(per_pair, 10.0)  # both pairs are 10% off

    def test_epsilon_guards_zero_targets(self):
        loss = MAPELoss(epsilon=1.0)(Tensor([0.5]), Tensor([0.0]))
        assert np.isfinite(loss.item())
        assert np.isclose(loss.item(), 50.0)

    def test_denominator_not_differentiated(self):
        """Eq. (7) differentiates only the numerator."""
        target = Tensor([2.0], requires_grad=True)
        pred = Tensor([3.0], requires_grad=True)
        MAPELoss()(pred, target).backward()
        assert np.allclose(pred.grad, [50.0])  # 100 * sign/|target|
        # target's grad comes only from the numerator's -1 term
        assert np.allclose(target.grad, [-50.0])

    def test_bad_epsilon_raises(self):
        with pytest.raises(ConfigurationError):
            MAPELoss(epsilon=0.0)


class TestHuber:
    def test_quadratic_region(self):
        loss = HuberLoss(delta=1.0)(Tensor([0.5]), Tensor([0.0]))
        assert np.isclose(loss.item(), 0.125)

    def test_linear_region(self):
        loss = HuberLoss(delta=1.0)(Tensor([3.0]), Tensor([0.0]))
        assert np.isclose(loss.item(), 3.0 - 0.5)

    def test_continuity_at_delta(self):
        lo = HuberLoss(delta=1.0)(Tensor([0.999999]), Tensor([0.0])).item()
        hi = HuberLoss(delta=1.0)(Tensor([1.000001]), Tensor([0.0])).item()
        assert abs(lo - hi) < 1e-5

    def test_bad_delta_raises(self):
        with pytest.raises(ConfigurationError):
            HuberLoss(delta=-1.0)


class TestRegistry:
    def test_get_loss(self):
        assert isinstance(get_loss("mse"), MSELoss)
        assert isinstance(get_loss("mape", epsilon=0.1), MAPELoss)

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_loss("nll")

    @pytest.mark.parametrize("name", ["mse", "mae", "mape", "huber"])
    def test_all_losses_scalar_and_differentiable(self, rng, name):
        pred = Tensor(rng.standard_normal((2, 3)) + 2.0, requires_grad=True)
        target = Tensor(rng.standard_normal((2, 3)) + 2.0)
        loss = get_loss(name)(pred, target)
        assert loss.size == 1
        loss.backward()
        assert pred.grad is not None
        assert pred.grad.shape == pred.shape

"""Module base-class behaviour."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn import Conv2d, LeakyReLU, Linear, Module, Parameter, Sequential
from repro.tensor import Tensor


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.scale = Parameter(np.array([2.0]))
        self.inner = Linear(3, 2, rng=np.random.default_rng(0))

    def forward(self, x):
        return self.inner(x) * self.scale


class TestRegistration:
    def test_parameters_discovered_recursively(self):
        net = TinyNet()
        names = [n for n, _ in net.named_parameters()]
        assert names == ["scale", "inner.weight", "inner.bias"]

    def test_num_parameters(self):
        net = TinyNet()
        assert net.num_parameters() == 1 + 3 * 2 + 2

    def test_modules_iteration(self):
        net = TinyNet()
        found = list(net.modules())
        assert net in found
        assert net.inner in found

    def test_children(self):
        net = TinyNet()
        assert list(net.children()) == [net.inner]

    def test_unimplemented_forward_raises(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor([1.0]))


class TestTrainEval:
    def test_train_eval_propagates(self):
        net = Sequential(Linear(2, 2, rng=np.random.default_rng(0)), LeakyReLU())
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())


class TestGradients:
    def test_zero_grad_clears_all(self):
        net = TinyNet()
        out = net(Tensor(np.ones((1, 3))))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self):
        a = TinyNet()
        b = TinyNet()
        b.load_state_dict(a.state_dict())
        x = Tensor(np.ones((2, 3)))
        assert np.allclose(a(x).data, b(x).data)

    def test_state_dict_is_a_copy(self):
        net = TinyNet()
        state = net.state_dict()
        state["scale"][0] = 99.0
        assert net.scale.data[0] == 2.0

    def test_missing_key_raises(self):
        net = TinyNet()
        state = net.state_dict()
        del state["scale"]
        with pytest.raises(ShapeError, match="missing"):
            net.load_state_dict(state)

    def test_unexpected_key_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(ShapeError, match="unexpected"):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(ShapeError, match="shape"):
            net.load_state_dict(state)


class TestSequential:
    def test_applies_in_order(self):
        net = Sequential(LeakyReLU(0.0), LeakyReLU(0.0))
        out = net(Tensor([-1.0, 2.0]))
        assert np.allclose(out.data, [0.0, 2.0])

    def test_len_iter_getitem(self):
        l1, l2 = LeakyReLU(), LeakyReLU()
        net = Sequential(l1, l2)
        assert len(net) == 2
        assert list(net) == [l1, l2]
        assert net[0] is l1

    def test_append(self):
        net = Sequential(LeakyReLU())
        net.append(Linear(2, 2, rng=np.random.default_rng(0)))
        assert len(net) == 2
        assert len(net.parameters()) == 2

    def test_parameters_from_layers(self):
        net = Sequential(
            Conv2d(1, 2, kernel_size=3, rng=np.random.default_rng(0)),
            LeakyReLU(),
            Conv2d(2, 1, kernel_size=3, rng=np.random.default_rng(1)),
        )
        # weight+bias per conv layer
        assert len(net.parameters()) == 4

"""SGD tests, including the paper's momentum rule (Eq. 3)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn import Parameter
from repro.optim import SGD


def make_param(value):
    p = Parameter(np.array(value, dtype=float))
    return p


class TestPlainSGD:
    def test_single_step(self):
        p = make_param([1.0])
        opt = SGD([p], lr=0.1)
        p.grad = np.array([2.0])
        opt.step()
        assert np.allclose(p.data, [1.0 - 0.1 * 2.0])

    def test_skips_none_grads(self):
        p = make_param([1.0])
        opt = SGD([p], lr=0.1)
        opt.step()
        assert np.allclose(p.data, [1.0])

    def test_zero_grad(self):
        p = make_param([1.0])
        p.grad = np.array([1.0])
        SGD([p], lr=0.1).zero_grad()
        assert p.grad is None

    def test_weight_decay(self):
        p = make_param([2.0])
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        opt.step()
        assert np.allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0])


class TestMomentum:
    def test_eq3_first_steps(self):
        """m_t = rho m_{t-1} + (1-rho) g;  W -= lr * m_t."""
        rho, lr = 0.9, 0.1
        p = make_param([0.0])
        opt = SGD([p], lr=lr, momentum=rho)
        g = np.array([1.0])
        p.grad = g
        opt.step()
        m1 = (1 - rho) * g
        assert np.allclose(p.data, -lr * m1)
        p.grad = g
        opt.step()
        m2 = rho * m1 + (1 - rho) * g
        assert np.allclose(p.data, -lr * (m1 + m2))

    def test_momentum_accelerates_constant_gradient(self):
        plain = make_param([0.0])
        with_mom = make_param([0.0])
        opt_plain = SGD([plain], lr=0.1)
        opt_mom = SGD([with_mom], lr=0.1, momentum=0.9)
        for _ in range(50):
            plain.grad = np.array([1.0])
            with_mom.grad = np.array([1.0])
            opt_plain.step()
            opt_mom.step()
        # In steady state the (1-rho)-normalized momentum matches plain
        # SGD; after the ramp-up both should be close.
        assert with_mom.data[0] < 0.0
        assert abs(with_mom.data[0] - plain.data[0]) < 1.0

    def test_state_dict_roundtrip(self):
        p = make_param([1.0])
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()
        state = opt.state_dict()

        q = make_param([1.0])
        opt2 = SGD([q], lr=0.5)  # intentionally different hyperparams
        opt2.load_state_dict(state)
        assert opt2.lr == 0.1
        assert opt2.momentum == 0.9
        assert np.allclose(opt2._velocity[0], opt._velocity[0])


class TestValidation:
    def test_empty_params_raise(self):
        with pytest.raises(ConfigurationError):
            SGD([], lr=0.1)

    def test_bad_lr_raises(self):
        with pytest.raises(ConfigurationError):
            SGD([make_param([1.0])], lr=0.0)

    def test_bad_momentum_raises(self):
        with pytest.raises(ConfigurationError):
            SGD([make_param([1.0])], lr=0.1, momentum=1.0)

    def test_frozen_param_raises(self):
        from repro.tensor import Tensor

        with pytest.raises(ConfigurationError):
            SGD([Tensor([1.0])], lr=0.1)

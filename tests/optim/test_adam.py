"""Adam tests against the paper's Eqs. (3)-(6)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn import Parameter
from repro.optim import Adam


def manual_adam_steps(w0, grads, lr=0.01, rho1=0.9, rho2=0.999, eps=1e-8):
    """Literal transcription of Eqs. (3)-(6)."""
    w = np.array(w0, dtype=float)
    m = np.zeros_like(w)
    v = np.zeros_like(w)
    for t, g in enumerate(grads, start=1):
        g = np.asarray(g, dtype=float)
        m = rho1 * m + (1 - rho1) * g
        v = rho2 * v + (1 - rho2) * g * g
        m_hat = m / (1 - rho1**t)
        v_hat = v / (1 - rho2**t)
        w = w - lr * m_hat / np.sqrt(v_hat + eps)  # eps inside sqrt, as Eq. (6)
    return w


class TestUpdateRule:
    def test_matches_manual_equations(self):
        grads = [np.array([1.0, -2.0]), np.array([0.5, 0.5]), np.array([-1.0, 3.0])]
        p = Parameter(np.array([0.3, -0.7]))
        opt = Adam([p], lr=0.01)
        for g in grads:
            p.grad = g.copy()
            opt.step()
        expected = manual_adam_steps([0.3, -0.7], grads)
        assert np.allclose(p.data, expected, atol=1e-12)

    def test_first_step_size_is_about_lr(self):
        """Bias correction makes the first step ~ lr regardless of the
        gradient's magnitude."""
        for scale in (1e-3, 1.0, 1e3):
            p = Parameter(np.array([0.0]))
            opt = Adam([p], lr=0.01)
            p.grad = np.array([scale])
            opt.step()
            # eps inside the sqrt shaves a little off the tiny-gradient
            # case; 1% tolerance covers it.
            assert np.isclose(abs(p.data[0]), 0.01, rtol=1e-2)

    def test_defaults_follow_paper(self):
        opt = Adam([Parameter(np.zeros(1))])
        assert opt.lr == 0.01  # eta from the paper (Kingma & Ba quote)
        assert opt.eps == 1e-8
        assert (opt.rho1, opt.rho2) == (0.9, 0.999)

    def test_weight_decay(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.01, weight_decay=0.1)
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] < 1.0  # decay pulls towards zero

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(400):
            p.grad = 2.0 * p.data  # d/dw w^2
            opt.step()
        assert abs(p.data[0]) < 1e-2


class TestState:
    def test_state_dict_roundtrip_continues_identically(self):
        grads = [np.array([1.0]), np.array([-1.0]), np.array([0.5]), np.array([2.0])]
        p1 = Parameter(np.array([0.0]))
        opt1 = Adam([p1], lr=0.01)
        for g in grads[:2]:
            p1.grad = g.copy()
            opt1.step()
        saved_state = opt1.state_dict()
        saved_param = p1.data.copy()

        p2 = Parameter(saved_param.copy())
        opt2 = Adam([p2], lr=0.999)
        opt2.load_state_dict(saved_state)
        for g in grads[2:]:
            p1.grad = g.copy()
            opt1.step()
            p2.grad = g.copy()
            opt2.step()
        assert np.allclose(p1.data, p2.data, atol=1e-14)


class TestValidation:
    def test_bad_betas_raise(self):
        with pytest.raises(ConfigurationError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.999))

    def test_bad_eps_raises(self):
        with pytest.raises(ConfigurationError):
            Adam([Parameter(np.zeros(1))], eps=0.0)

    def test_bad_weight_decay_raises(self):
        with pytest.raises(ConfigurationError):
            Adam([Parameter(np.zeros(1))], weight_decay=-1.0)

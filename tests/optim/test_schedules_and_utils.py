"""LR schedules and gradient utilities."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn import Parameter
from repro.optim import (
    SGD,
    ConstantLR,
    CosineAnnealingLR,
    ExponentialLR,
    StepLR,
    clip_grad_norm,
    get_optimizer,
    global_grad_norm,
)


def opt_with_param():
    p = Parameter(np.zeros(3))
    return SGD([p], lr=1.0), p


class TestSchedules:
    def test_constant(self):
        opt, _ = opt_with_param()
        schedule = ConstantLR(opt)
        for _ in range(5):
            assert schedule.step() == 1.0

    def test_step_lr(self):
        opt, _ = opt_with_param()
        schedule = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [schedule.step() for _ in range(4)]
        assert np.allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_exponential(self):
        opt, _ = opt_with_param()
        schedule = ExponentialLR(opt, gamma=0.5)
        assert np.allclose([schedule.step(), schedule.step()], [0.5, 0.25])

    def test_cosine_endpoints(self):
        opt, _ = opt_with_param()
        schedule = CosineAnnealingLR(opt, total_epochs=10, min_lr=0.1)
        mid = [schedule.step() for _ in range(10)]
        assert np.isclose(mid[-1], 0.1)
        assert mid[0] < 1.0
        # Monotone decreasing over the annealing window.
        assert all(a >= b for a, b in zip(mid, mid[1:]))

    def test_schedule_updates_optimizer(self):
        opt, p = opt_with_param()
        schedule = StepLR(opt, step_size=1, gamma=0.5)
        schedule.step()
        p.grad = np.array([1.0, 0.0, 0.0])
        opt.step()
        assert np.allclose(p.data, [-0.5, 0.0, 0.0])

    def test_validation(self):
        opt, _ = opt_with_param()
        with pytest.raises(ConfigurationError):
            StepLR(opt, step_size=0)
        with pytest.raises(ConfigurationError):
            ExponentialLR(opt, gamma=0.0)
        with pytest.raises(ConfigurationError):
            CosineAnnealingLR(opt, total_epochs=0)


class TestGradUtils:
    def test_global_norm(self):
        p1, p2 = Parameter(np.zeros(2)), Parameter(np.zeros(2))
        p1.grad = np.array([3.0, 0.0])
        p2.grad = np.array([0.0, 4.0])
        assert np.isclose(global_grad_norm([p1, p2]), 5.0)

    def test_none_grads_count_zero(self):
        p1, p2 = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        p1.grad = np.array([2.0])
        assert np.isclose(global_grad_norm([p1, p2]), 2.0)

    def test_clip_scales_down(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])
        pre = clip_grad_norm([p], max_norm=1.0)
        assert np.isclose(pre, 5.0)
        assert np.isclose(np.linalg.norm(p.grad), 1.0, rtol=1e-6)

    def test_clip_noop_when_small(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])
        clip_grad_norm([p], max_norm=1.0)
        assert np.allclose(p.grad, [0.3, 0.4])

    def test_clip_bad_max_raises(self):
        with pytest.raises(ConfigurationError):
            clip_grad_norm([], max_norm=0.0)


class TestRegistry:
    def test_get_optimizer(self):
        p = Parameter(np.zeros(1))
        assert isinstance(get_optimizer("sgd", [p], lr=0.1), SGD)

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_optimizer("rmsprop", [Parameter(np.zeros(1))])

"""Every registered scenario drives the full pipeline on every backend.

The registry's contract: a scenario name is all the pipeline needs.
For each shipped scenario this generates a smoke-scale dataset, trains
the adapted CNN for two epochs across two ranks, rolls the coupled
surrogate out, and scores the rollout with the scenario's own
physics-residual evaluator — once over the serial/threads path and
once over real OS processes.
"""

import numpy as np
import pytest

from repro.core import ParallelPredictor, ParallelTrainer, TrainingConfig
from repro.data import generate_scenario_dataset
from repro.scenarios import (
    available_scenarios,
    cnn_config,
    get_scenario,
    scenario_residual,
)

GRID = 16
SNAPSHOTS = 6


def _roundtrip(name, train_execution, rollout_execution):
    produced = generate_scenario_dataset(
        name, grid_size=GRID, num_snapshots=SNAPSHOTS, num_train=4
    )
    spec = get_scenario(name)
    trainer = ParallelTrainer(
        cnn_config=cnn_config(spec),
        training_config=TrainingConfig(epochs=2, batch_size=4, loss="mse", seed=0),
        num_ranks=2,
        seed=0,
    )
    result = trainer.train(produced.train, execution=train_execution)
    assert result.num_ranks == 2
    assert all(np.isfinite(loss) for loss in result.final_losses)

    predictor = ParallelPredictor(result.build_models(), result.decomposition)
    initial = produced.full_snapshots[0]
    rollout = predictor.rollout(initial, num_steps=2, execution=rollout_execution)
    trajectory = np.asarray(rollout.trajectory)
    assert trajectory.shape == (3,) + initial.shape
    assert np.all(np.isfinite(trajectory))

    report = scenario_residual(
        spec, trajectory, produced.snapshot_dt, grid_size=GRID
    )
    assert np.isfinite(report.normalized)
    assert report.num_transitions == 2
    return report


@pytest.mark.parametrize("name", available_scenarios())
def test_roundtrip_serial(name):
    _roundtrip(name, train_execution="serial", rollout_execution="threads")


@pytest.mark.parametrize("name", available_scenarios())
def test_roundtrip_processes(name):
    _roundtrip(name, train_execution="processes", rollout_execution="processes")


def test_backends_agree_bit_exactly():
    """Training and rollout are deterministic given the seed, so the
    serial and process paths must produce the same trajectory."""
    name = "diffusion"
    produced = generate_scenario_dataset(
        name, grid_size=GRID, num_snapshots=SNAPSHOTS, num_train=4
    )
    trajectories = []
    for train_execution, rollout_execution in (
        ("serial", "threads"),
        ("processes", "processes"),
    ):
        trainer = ParallelTrainer(
            cnn_config=cnn_config(name),
            training_config=TrainingConfig(epochs=2, batch_size=4, loss="mse", seed=0),
            num_ranks=2,
            seed=0,
        )
        result = trainer.train(produced.train, execution=train_execution)
        predictor = ParallelPredictor(result.build_models(), result.decomposition)
        rollout = predictor.rollout(
            produced.full_snapshots[0], num_steps=2, execution=rollout_execution
        )
        trajectories.append(np.asarray(rollout.trajectory))
    np.testing.assert_array_equal(trajectories[0], trajectories[1])

"""Spec -> solver objects: grids, equations, ICs, simulations, CNNs."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import (
    Scenario,
    available_initial_conditions,
    build_equation,
    build_grid,
    build_initial_state,
    build_simulation,
    channels,
    cnn_config,
    simulate,
)
from repro.solver import EulerState, FieldSimulation, LinearizedEuler, Simulation


def test_build_grid_uses_spec_size_and_override():
    assert build_grid("diffusion").shape == (64, 64)
    assert build_grid("diffusion", grid_size=24).shape == (24, 24)


def test_build_equation_applies_params():
    euler = build_equation("euler-gaussian")
    assert isinstance(euler, LinearizedEuler)
    assert euler.dissipation == pytest.approx(0.02)
    assert build_equation("diffusion").nu == pytest.approx(0.05)
    assert build_equation("allen-cahn").epsilon == pytest.approx(0.01)


def test_channels_per_family():
    assert channels("euler-gaussian") == ("p", "rho", "u", "v")
    assert channels("diffusion") == ("u",)
    assert channels("allen-cahn") == ("u",)


def test_available_initial_conditions_covers_both_families():
    names = available_initial_conditions()
    assert "paper_pulse" in names
    assert "scalar_blobs" in names
    assert list(names) == sorted(names)


def test_euler_ic_is_a_state_scalar_ic_is_an_array():
    grid = build_grid("euler-gaussian", grid_size=16)
    assert isinstance(build_initial_state("euler-gaussian", grid), EulerState)
    scalar = build_initial_state("diffusion", build_grid("diffusion", grid_size=16))
    assert isinstance(scalar, np.ndarray)
    assert scalar.shape == (1, 16, 16)


def test_seed_override_only_for_randomized_ics():
    grid = build_grid("diffusion", grid_size=16)
    a = build_initial_state("diffusion", grid, seed=1)
    b = build_initial_state("diffusion", grid, seed=2)
    assert not np.array_equal(a, b)
    with pytest.raises(ConfigurationError, match="deterministic"):
        build_initial_state("euler-gaussian", build_grid("euler-gaussian", 16), seed=1)


def test_unknown_ic_and_bad_params_are_configuration_errors():
    grid = build_grid("diffusion", grid_size=16)
    wrong_family = Scenario(
        name="t", equation="diffusion", initial_condition="paper_pulse", grid_size=16
    )
    with pytest.raises(ConfigurationError, match="unknown initial condition"):
        build_initial_state(wrong_family, grid)
    bad_params = Scenario(
        name="t",
        equation="diffusion",
        initial_condition="scalar_gaussian",
        ic_params={"no_such_arg": 1},
        grid_size=16,
    )
    with pytest.raises(ConfigurationError, match="bad ic_params"):
        build_initial_state(bad_params, grid)


def test_build_simulation_picks_the_driver_by_equation():
    assert isinstance(build_simulation("euler-gaussian"), Simulation)
    assert isinstance(build_simulation("diffusion"), FieldSimulation)
    assert isinstance(build_simulation("allen-cahn"), FieldSimulation)


def test_simulate_smoke_shapes_and_finiteness():
    result = simulate("diffusion", grid_size=16, num_snapshots=4)
    assert result.snapshots.shape == (4, 1, 16, 16)
    assert np.all(np.isfinite(result.snapshots))
    assert result.dt > 0

    result = simulate("euler-off-center", grid_size=16, num_snapshots=3)
    assert result.snapshots.shape == (3, 4, 16, 16)
    assert np.all(np.isfinite(result.snapshots))


def test_simulate_seed_varies_randomized_trajectories():
    a = simulate("allen-cahn", grid_size=16, num_snapshots=3, seed=1).snapshots
    b = simulate("allen-cahn", grid_size=16, num_snapshots=3, seed=2).snapshots
    assert not np.array_equal(a, b)


def test_cnn_config_adapts_channel_count():
    assert cnn_config("euler-gaussian").channels == (4, 6, 16, 6, 4)
    assert cnn_config("diffusion").channels == (1, 6, 16, 6, 1)
    # Overrides are merged on top of the adapted defaults.
    custom = cnn_config("diffusion", channels=(1, 8, 1))
    assert custom.channels == (1, 8, 1)

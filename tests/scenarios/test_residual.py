"""Physics-residual metric: solver output scores low, junk scores high."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import (
    get_scenario,
    physics_residual,
    scenario_residual,
    simulate,
)


def _solver_trajectory(name, grid_size=24, num_snapshots=6):
    result = simulate(name, grid_size=grid_size, num_snapshots=num_snapshots)
    return result.snapshots, result.dt


@pytest.mark.parametrize("name", ["euler-gaussian", "diffusion", "allen-cahn"])
def test_solver_trajectories_have_small_residual(name):
    snapshots, dt = _solver_trajectory(name)
    spec = get_scenario(name)
    steps = spec.steps_per_snapshot
    report = scenario_residual(spec, snapshots, dt * steps, grid_size=24)
    assert np.isfinite(report.normalized)
    # The solver itself satisfies its own equation to discretization
    # accuracy; a midpoint defect over one snapshot interval stays well
    # under the O(1) score of unrelated data.
    assert report.normalized < 0.2


def test_random_data_has_order_one_residual():
    spec = get_scenario("diffusion")
    rng = np.random.default_rng(0)
    junk = rng.standard_normal((5, 1, 24, 24))
    report = scenario_residual(spec, junk, 0.01, grid_size=24)
    assert report.normalized > 0.5


def test_residual_orders_solver_below_junk():
    """The metric must rank a consistent trajectory below a shuffled one
    of identical marginals — that is what makes it an evaluator."""
    snapshots, dt = _solver_trajectory("diffusion")
    spec = get_scenario("diffusion")
    good = scenario_residual(spec, snapshots, dt * spec.steps_per_snapshot, grid_size=24)
    shuffled = snapshots[::-1].copy()
    bad = scenario_residual(spec, shuffled, dt * spec.steps_per_snapshot, grid_size=24)
    assert good.normalized < bad.normalized


def test_report_contents_and_text():
    snapshots, dt = _solver_trajectory("euler-gaussian", num_snapshots=4)
    spec = get_scenario("euler-gaussian")
    report = scenario_residual(spec, snapshots, dt, grid_size=24)
    assert report.num_transitions == 3
    assert set(report.per_channel) == {"p", "rho", "u", "v"}
    assert report.margin == spec.residual_margin
    text = report.report()
    assert text.startswith("physics residual (normalized):")
    payload = report.to_dict()
    assert payload["normalized"] == pytest.approx(report.normalized)
    assert set(payload["per_channel"]) == {"p", "rho", "u", "v"}


def _equation_and_grid():
    from repro.scenarios import build_equation, build_grid

    return build_equation("diffusion"), build_grid("diffusion", grid_size=16)


@pytest.mark.parametrize(
    "kwargs, match",
    [
        ({"dt": 0.0}, "dt must be positive"),
        ({"dt": -1.0}, "dt must be positive"),
        ({"margin": -1}, "leaves no interior"),
        ({"margin": 8}, "leaves no interior"),
    ],
)
def test_physics_residual_rejects_bad_inputs(kwargs, match):
    equation, grid = _equation_and_grid()
    snapshots = np.zeros((3, 1, 16, 16))
    params = {"dt": 0.1, "margin": 2, **kwargs}
    with pytest.raises(ConfigurationError, match=match):
        physics_residual(snapshots, equation, grid, **params)


def test_physics_residual_shape_validation():
    equation, grid = _equation_and_grid()
    with pytest.raises(ConfigurationError, match="at least 2"):
        physics_residual(np.zeros((1, 1, 16, 16)), equation, grid, dt=0.1)
    with pytest.raises(ConfigurationError, match="channel count"):
        physics_residual(np.zeros((3, 2, 16, 16)), equation, grid, dt=0.1)
    with pytest.raises(ConfigurationError, match="shape"):
        physics_residual(np.zeros((3, 16, 16)), equation, grid, dt=0.1)
    with pytest.raises(ConfigurationError, match="does not match grid"):
        physics_residual(np.zeros((3, 1, 12, 12)), equation, grid, dt=0.1)

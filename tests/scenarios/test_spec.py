"""Scenario spec: validation, canonicalization, dict round-trip."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import Scenario, available_scenarios, get_scenario


def test_defaults_are_the_paper_problem():
    spec = Scenario(name="t")
    assert spec.equation == "linearized_euler"
    assert spec.initial_condition == "paper_pulse"
    assert spec.boundary == "outflow"
    assert spec.grid_size == 256
    assert spec.num_snapshots == 1500


@pytest.mark.parametrize(
    "overrides",
    [
        {"name": ""},
        {"grid_size": 4},
        {"half_extent": 0.0},
        {"cfl": 0.0},
        {"num_snapshots": 1},
        {"train_fraction": 0.0},
        {"train_fraction": 1.0},
        {"steps_per_snapshot": 0},
        {"rollout_steps": 0},
        {"residual_margin": -1},
    ],
)
def test_validation_rejects(overrides):
    with pytest.raises(ConfigurationError):
        Scenario(**{"name": "t", **overrides})


def test_params_are_canonicalized_at_construction():
    spec = Scenario(name="t", ic_params={"center": (0.3, -0.2), "n": 3})
    assert spec.ic_params == {"center": [0.3, -0.2], "n": 3}


def test_non_json_params_rejected():
    with pytest.raises(ConfigurationError):
        Scenario(name="t", ic_params={"f": object()})
    with pytest.raises(ConfigurationError):
        Scenario(name="t", equation_params={1: "x"})


def test_dict_round_trip_through_json():
    spec = Scenario(
        name="t",
        equation="diffusion",
        equation_params={"nu": 0.05},
        initial_condition="scalar_blobs",
        ic_params={"num_blobs": 2, "seed": 1},
        boundary="neumann",
        grid_size=64,
    )
    wire = json.loads(json.dumps(spec.to_dict()))
    assert Scenario.from_dict(wire) == spec


def test_every_registered_scenario_round_trips():
    for name in available_scenarios():
        spec = get_scenario(name)
        wire = json.loads(json.dumps(spec.to_dict()))
        assert Scenario.from_dict(wire) == spec


def test_from_dict_rejects_unknown_and_missing_fields():
    with pytest.raises(ConfigurationError, match="unknown scenario fields"):
        Scenario.from_dict({"name": "t", "equatoin": "typo"})
    with pytest.raises(ConfigurationError, match="missing the 'name'"):
        Scenario.from_dict({"equation": "diffusion"})
    with pytest.raises(ConfigurationError):
        Scenario.from_dict(["not", "a", "mapping"])


def test_replace_revalidates():
    spec = Scenario(name="t")
    assert spec.replace(grid_size=64).grid_size == 64
    with pytest.raises(ConfigurationError):
        spec.replace(grid_size=2)


def test_num_train_clamps_to_nonempty_splits():
    spec = Scenario(name="t", train_fraction=0.99, num_snapshots=10)
    assert spec.num_train() == 9
    assert spec.num_train(3) == 2
    spec = Scenario(name="t", train_fraction=0.01, num_snapshots=10)
    assert spec.num_train() == 1
    with pytest.raises(ConfigurationError):
        spec.num_train(1)

"""Registry behaviour: lookup, registration, the shipped catalogue."""

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import (
    DEFAULT_SCENARIO,
    Scenario,
    available_scenarios,
    get_scenario,
    register_scenario,
)
from repro.scenarios import registry as registry_module

EXPECTED_BUILTINS = {
    "euler-gaussian",
    "euler-multi-pulse",
    "euler-off-center",
    "euler-reflecting",
    "euler-periodic",
    "euler-absorbing",
    "diffusion",
    "allen-cahn",
}


def test_catalogue_ships_the_issue_matrix():
    names = set(available_scenarios())
    assert EXPECTED_BUILTINS <= names
    assert DEFAULT_SCENARIO in names


def test_available_scenarios_is_sorted():
    names = available_scenarios()
    assert list(names) == sorted(names)


def test_get_scenario_by_name_and_passthrough():
    spec = get_scenario("diffusion")
    assert spec.equation == "diffusion"
    # A Scenario instance passes through untouched — callers can accept
    # either a registry name or an ad-hoc spec.
    ad_hoc = Scenario(name="ad-hoc", grid_size=32)
    assert get_scenario(ad_hoc) is ad_hoc


def test_unknown_scenario_lists_the_registry():
    with pytest.raises(ConfigurationError, match="unknown scenario 'nope'"):
        get_scenario("nope")


def test_register_rejects_duplicates_unless_overwrite(monkeypatch):
    monkeypatch.setattr(
        registry_module, "_REGISTRY", dict(registry_module._REGISTRY)
    )
    spec = Scenario(name="tmp-test-scenario", grid_size=32)
    register_scenario(spec)
    assert get_scenario("tmp-test-scenario") == spec
    with pytest.raises(ConfigurationError, match="already registered"):
        register_scenario(spec)
    replacement = spec.replace(grid_size=64)
    register_scenario(replacement, overwrite=True)
    assert get_scenario("tmp-test-scenario").grid_size == 64


def test_default_scenario_is_the_paper_baseline():
    spec = get_scenario(DEFAULT_SCENARIO)
    assert spec.equation == "linearized_euler"
    assert spec.initial_condition == "paper_pulse"
    assert spec.boundary == "outflow"
    assert (spec.grid_size, spec.num_snapshots) == (256, 1500)

"""Simulation-driver tests (the Ateles stand-in's system behaviour)."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.solver import (
    Background,
    EulerState,
    LinearizedEuler,
    Simulation,
    UniformGrid2D,
    paper_initial_condition,
    plane_wave,
)


class TestRunMechanics:
    def test_snapshot_shapes_and_times(self):
        grid = UniformGrid2D.square(32)
        sim = Simulation(grid)
        result = sim.run(paper_initial_condition(grid), num_snapshots=5, steps_per_snapshot=3)
        assert result.snapshots.shape == (5, 4, 32, 32)
        assert result.num_snapshots == 5
        assert np.allclose(result.times, np.arange(5) * 3 * sim.dt)

    def test_first_snapshot_is_initial_with_bc(self):
        grid = UniformGrid2D.square(32)
        sim = Simulation(grid)
        initial = paper_initial_condition(grid)
        result = sim.run(initial, num_snapshots=2)
        # Pressure BC zeroes the walls of the recorded initial state.
        assert np.all(result.snapshots[0, 0, 0, :] == 0.0)
        inner = result.snapshots[0, 0, 1:-1, 1:-1]
        assert np.allclose(inner, initial.p[1:-1, 1:-1])

    def test_advance_not_in_place(self):
        grid = UniformGrid2D.square(32)
        sim = Simulation(grid)
        initial = paper_initial_condition(grid)
        before = initial.p.copy()
        sim.advance(initial, 2)
        assert np.allclose(initial.p, before)

    def test_mismatched_state_raises(self):
        sim = Simulation(UniformGrid2D.square(32))
        with pytest.raises(SolverError):
            sim.run(EulerState.zeros((16, 16)), num_snapshots=2)

    def test_validation(self):
        sim = Simulation(UniformGrid2D.square(16))
        state = EulerState.zeros((16, 16))
        with pytest.raises(SolverError):
            sim.run(state, num_snapshots=0)
        with pytest.raises(SolverError):
            sim.run(state, num_snapshots=2, steps_per_snapshot=0)


class TestPhysics:
    def test_pulse_radiates_symmetrically(self):
        """The centred pulse must stay 4-fold symmetric as it expands."""
        grid = UniformGrid2D.square(33)
        sim = Simulation(grid, boundary="outflow", cfl=0.4)
        result = sim.run(paper_initial_condition(grid), num_snapshots=10, steps_per_snapshot=2)
        p = result.snapshots[-1, 0]
        assert np.allclose(p, np.flipud(p), atol=1e-10)
        assert np.allclose(p, np.fliplr(p), atol=1e-10)
        assert np.allclose(p, p.T, atol=1e-10)

    def test_outflow_energy_non_increasing(self):
        """The paper's p'=0 wall is a pressure-release surface: it
        reflects the pulse (so energy decays only mildly, through the
        scheme dissipation) but must never grow."""
        grid = UniformGrid2D.square(48)
        sim = Simulation(grid, boundary="outflow", cfl=0.5)
        steps = int(2.5 / (1.18 * sim.dt))
        result = sim.run(
            paper_initial_condition(grid),
            num_snapshots=10,
            steps_per_snapshot=max(steps // 10, 1),
        )
        assert result.energies[-1] < result.energies[0]
        assert np.max(result.energies) < 1.1 * result.energies[0]

    def test_sponge_boundary_absorbs_pulse(self):
        """The sponge extension actually drains energy once the pulse
        reaches the boundary band."""
        grid = UniformGrid2D.square(48)
        sim = Simulation(grid, boundary="sponge", cfl=0.5)
        steps = int(2.5 / (1.18 * sim.dt))
        result = sim.run(
            paper_initial_condition(grid),
            num_snapshots=10,
            steps_per_snapshot=max(steps // 10, 1),
        )
        assert result.energies[-1] < 0.4 * result.energies[0]

    def test_reflecting_conserves_energy_without_dissipation(self):
        grid = UniformGrid2D.square(64)
        eq = LinearizedEuler(dissipation=0.0)
        sim = Simulation(grid, eq, boundary="reflecting", cfl=0.4)
        result = sim.run(paper_initial_condition(grid), num_snapshots=20, steps_per_snapshot=2)
        drift = abs(result.energies[-1] / result.energies[0] - 1.0)
        assert drift < 0.02

    def test_plane_wave_travels_at_sound_speed(self):
        """After one domain crossing time, the periodic plane wave must
        return to (approximately) its initial phase."""
        grid = UniformGrid2D.square(128)
        bg = Background()
        eq = LinearizedEuler(bg, dissipation=0.0)
        sim = Simulation(grid, eq, boundary="periodic", cfl=0.4)
        initial = plane_wave(grid, wavenumber=(1, 0), background=bg)
        steps = int(round((grid.x_max - grid.x_min) / bg.sound_speed / sim.dt))
        final = sim.advance(initial.copy(), steps)
        error = np.max(np.abs(final.p - initial.p)) / np.max(np.abs(initial.p))
        assert error < 0.12  # dispersion + dt rounding at CD2/128 points

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_instability_detected(self):
        """A CFL violation must raise, not return NaNs silently (the
        overflow RuntimeWarnings on the way up are expected)."""
        grid = UniformGrid2D.square(32)
        sim = Simulation(grid, cfl=0.5)
        sim.dt *= 20.0  # deliberately break the CFL bound
        with pytest.raises(SolverError, match="blew up"):
            sim.run(paper_initial_condition(grid), num_snapshots=200)

    def test_grid_convergence_of_pulse_solution(self):
        """Refining the grid must reduce deviation from a reference run."""
        def pulse_after(n):
            grid = UniformGrid2D.square(n)
            eq = LinearizedEuler(dissipation=0.0)
            sim = Simulation(grid, eq, boundary="outflow", cfl=0.2)
            # Fixed physical time via fixed step count scaled by dt.
            target_time = 0.2
            steps = int(round(target_time / sim.dt))
            state = sim.advance(paper_initial_condition(grid), steps)
            # Sample the centre value (grid-independent location).
            return state.p[n // 2, n // 2]

        coarse = pulse_after(33)
        fine = pulse_after(65)
        finest = pulse_after(129)
        assert abs(fine - finest) < abs(coarse - finest)

"""Linearized-Euler equation tests."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.solver import Background, EulerState, LinearizedEuler, UniformGrid2D, plane_wave


class TestBackground:
    def test_paper_defaults(self):
        bg = Background()
        assert bg.p_c == 1.0  # 1 bar, in bar units
        assert bg.rho_c == 1.0
        assert bg.u_c == 0.0 and bg.v_c == 0.0
        assert bg.gamma == 1.4

    def test_sound_speed(self):
        bg = Background(p_c=1.0, rho_c=1.0, gamma=1.4)
        assert np.isclose(bg.sound_speed, np.sqrt(1.4))

    def test_si_air(self):
        bg = Background.si_air()
        assert bg.p_c == 1.0e5
        assert np.isclose(bg.sound_speed, np.sqrt(1.4e5))

    def test_max_wave_speed_includes_advection(self):
        bg = Background(u_c=3.0, v_c=4.0)
        assert np.isclose(bg.max_wave_speed, 5.0 + bg.sound_speed)

    def test_validation(self):
        with pytest.raises(SolverError):
            Background(rho_c=0.0)
        with pytest.raises(SolverError):
            Background(gamma=1.0)


class TestRHS:
    def test_quiescent_state_has_zero_rhs(self):
        eq = LinearizedEuler(dissipation=0.0)
        state = EulerState.zeros((8, 8))
        rhs = eq.rhs(state, 0.1, 0.1)
        assert rhs.max_abs() == 0.0

    def test_uniform_pressure_drives_no_interior_velocity(self):
        eq = LinearizedEuler(dissipation=0.0)
        state = EulerState.zeros((8, 8))
        state.p[...] = 2.0
        rhs = eq.rhs(state, 0.1, 0.1)
        assert np.allclose(rhs.u, 0.0)
        assert np.allclose(rhs.v, 0.0)
        assert np.allclose(rhs.p, 0.0)

    def test_pressure_gradient_accelerates_fluid(self):
        """du/dt = -1/rho_c dp/dx (Eq. 8b at rest)."""
        grid = UniformGrid2D.square(17)
        bg = Background(rho_c=2.0)
        eq = LinearizedEuler(bg, dissipation=0.0)
        state = EulerState.zeros(grid.shape)
        X, _ = grid.meshgrid()
        state.p[...] = 3.0 * X
        rhs = eq.rhs(state, grid.dx, grid.dy)
        assert np.allclose(rhs.u, -3.0 / 2.0)
        assert np.allclose(rhs.v, 0.0)

    def test_velocity_divergence_compresses(self):
        """dp/dt = -gamma p_c div(u); drho/dt = -rho_c div(u)."""
        grid = UniformGrid2D.square(17)
        bg = Background(p_c=2.0, rho_c=3.0, gamma=1.4)
        eq = LinearizedEuler(bg, dissipation=0.0)
        state = EulerState.zeros(grid.shape)
        X, _ = grid.meshgrid()
        state.u[...] = 0.5 * X  # div u = 0.5
        rhs = eq.rhs(state, grid.dx, grid.dy)
        assert np.allclose(rhs.p, -1.4 * 2.0 * 0.5)
        assert np.allclose(rhs.rho, -3.0 * 0.5)

    def test_background_advection_term(self):
        """With u_c != 0 a pure density pattern is advected."""
        grid = UniformGrid2D.square(17)
        bg = Background(u_c=2.0)
        eq = LinearizedEuler(bg, dissipation=0.0)
        state = EulerState.zeros(grid.shape)
        X, _ = grid.meshgrid()
        state.rho[...] = X  # drho/dt = -u_c * drho/dx = -2
        rhs = eq.rhs(state, grid.dx, grid.dy)
        assert np.allclose(rhs.rho, -2.0)

    def test_plane_wave_is_near_eigenmode(self):
        """For the acoustic relations, d/dt q = -c dq/dx for a +x wave."""
        grid = UniformGrid2D.square(129)
        bg = Background()
        eq = LinearizedEuler(bg, dissipation=0.0)
        state = plane_wave(grid, amplitude=1.0, wavenumber=(1, 0), background=bg)
        rhs = eq.rhs(state, grid.dx, grid.dy)
        # Compare interior (edges use one-sided stencils).
        from repro.solver import ddx

        expected = -bg.sound_speed * ddx(state.p, grid.dx)
        interior = np.s_[2:-2, 2:-2]
        scale = np.max(np.abs(expected))
        assert np.allclose(rhs.p[interior], expected[interior], atol=0.02 * scale)

    def test_dissipation_damps_extrema(self):
        eq = LinearizedEuler(dissipation=0.1)
        state = EulerState.zeros((9, 9))
        state.p[4, 4] = 1.0  # sharp spike
        rhs = eq.rhs(state, 0.1, 0.1)
        assert rhs.p[4, 4] < 0.0  # Laplacian pulls the spike down

    def test_negative_dissipation_raises(self):
        with pytest.raises(SolverError):
            LinearizedEuler(dissipation=-0.1)


class TestStableDt:
    def test_scales_inversely_with_resolution(self):
        eq = LinearizedEuler()
        dt_coarse = eq.stable_dt(0.1, 0.1)
        dt_fine = eq.stable_dt(0.05, 0.05)
        assert np.isclose(dt_coarse / dt_fine, 2.0)

    def test_scales_with_cfl(self):
        eq = LinearizedEuler()
        assert np.isclose(eq.stable_dt(0.1, 0.1, cfl=1.0) / eq.stable_dt(0.1, 0.1, cfl=0.5), 2.0)

    def test_invalid_cfl_raises(self):
        with pytest.raises(SolverError):
            LinearizedEuler().stable_dt(0.1, 0.1, cfl=0.0)


class TestEnergy:
    def test_zero_for_quiescent(self):
        eq = LinearizedEuler()
        assert eq.acoustic_energy(EulerState.zeros((5, 5)), 0.1, 0.1) == 0.0

    def test_positive_and_additive(self, rng):
        eq = LinearizedEuler()
        state = EulerState.zeros((5, 5))
        state.u[...] = rng.standard_normal((5, 5))
        energy_u = eq.acoustic_energy(state, 0.1, 0.1)
        assert energy_u > 0.0
        state.p[...] = rng.standard_normal((5, 5))
        assert eq.acoustic_energy(state, 0.1, 0.1) > energy_u

    def test_scales_quadratically(self):
        eq = LinearizedEuler()
        state = EulerState.zeros((5, 5))
        state.p[...] = 1.0
        e1 = eq.acoustic_energy(state, 0.1, 0.1)
        state.p[...] = 2.0
        assert np.isclose(eq.acoustic_energy(state, 0.1, 0.1), 4.0 * e1)

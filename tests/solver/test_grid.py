"""Grid tests."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.solver import UniformGrid2D


class TestConstruction:
    def test_square_factory(self):
        grid = UniformGrid2D.square(128)
        assert grid.shape == (128, 128)
        assert grid.x_min == -1.0 and grid.x_max == 1.0

    def test_spacing(self):
        grid = UniformGrid2D(nx=11, ny=21, x_min=0.0, x_max=1.0, y_min=0.0, y_max=4.0)
        assert np.isclose(grid.dx, 0.1)
        assert np.isclose(grid.dy, 0.2)

    def test_num_points(self):
        assert UniformGrid2D(4, 5).num_points == 20

    def test_too_small_raises(self):
        with pytest.raises(SolverError):
            UniformGrid2D(2, 10)

    def test_degenerate_extent_raises(self):
        with pytest.raises(SolverError):
            UniformGrid2D(4, 4, x_min=1.0, x_max=1.0)


class TestCoordinates:
    def test_axis_arrays(self):
        grid = UniformGrid2D.square(5)
        assert np.allclose(grid.x, [-1.0, -0.5, 0.0, 0.5, 1.0])
        assert np.allclose(grid.y, grid.x)

    def test_meshgrid_shapes_and_orientation(self):
        grid = UniformGrid2D(nx=4, ny=3)
        X, Y = grid.meshgrid()
        assert X.shape == (3, 4)
        # X varies along the last axis, Y along the first ([y, x] layout).
        assert np.allclose(X[0], X[1])
        assert np.allclose(Y[:, 0], Y[:, 1])

    def test_subgrid_extent(self):
        grid = UniformGrid2D.square(9)
        sub = grid.subgrid(slice(0, 5), slice(4, 9))
        assert sub.shape == (5, 5)
        assert np.isclose(sub.x_min, grid.x[4])
        assert np.isclose(sub.x_max, grid.x[8])
        assert np.isclose(sub.dx, grid.dx)

    def test_subgrid_too_small_raises(self):
        grid = UniformGrid2D.square(9)
        with pytest.raises(SolverError):
            grid.subgrid(slice(0, 2), slice(0, 9))

"""Time-integrator order-of-accuracy tests.

The integrators operate on EulerState; to test temporal order we embed
the scalar ODE q' = lambda*q in the pressure field (RHS ignores space).
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.solver import EulerState, euler_step, get_integrator, heun_step, rk4_step

LAMBDA = -1.3


def scalar_rhs(state: EulerState) -> EulerState:
    return EulerState(
        LAMBDA * state.p, LAMBDA * state.rho, LAMBDA * state.u, LAMBDA * state.v
    )


def integrate(step, dt, steps):
    state = EulerState.zeros((3, 3))
    state.p[...] = 1.0
    for _ in range(steps):
        state = step(state, scalar_rhs, dt)
    return state.p[0, 0]


def observed_order(step):
    errors = []
    for steps in (16, 32):
        dt = 1.0 / steps
        exact = np.exp(LAMBDA)
        errors.append(abs(integrate(step, dt, steps) - exact))
    return np.log2(errors[0] / errors[1])


class TestOrders:
    def test_euler_first_order(self):
        assert 0.8 < observed_order(euler_step) < 1.3

    def test_heun_second_order(self):
        assert 1.8 < observed_order(heun_step) < 2.3

    def test_rk4_fourth_order(self):
        assert 3.7 < observed_order(rk4_step) < 4.5

    def test_rk4_much_more_accurate_than_euler(self):
        exact = np.exp(LAMBDA)
        err_euler = abs(integrate(euler_step, 1.0 / 32, 32) - exact)
        err_rk4 = abs(integrate(rk4_step, 1.0 / 32, 32) - exact)
        assert err_rk4 < err_euler / 100.0


class TestAllFields:
    def test_all_channels_advanced(self, rng):
        state = EulerState.zeros((3, 3))
        state.p[...] = 1.0
        state.rho[...] = 2.0
        state.u[...] = -1.0
        state.v[...] = 0.5
        out = rk4_step(state, scalar_rhs, 0.1)
        factor = out.p[0, 0] / 1.0
        assert np.isclose(out.rho[0, 0] / 2.0, factor)
        assert np.isclose(out.u[0, 0] / -1.0, factor)
        assert np.isclose(out.v[0, 0] / 0.5, factor)

    def test_step_does_not_mutate_input(self):
        state = EulerState.zeros((3, 3))
        state.p[...] = 1.0
        rk4_step(state, scalar_rhs, 0.1)
        assert np.allclose(state.p, 1.0)


class TestRegistry:
    def test_lookup(self):
        assert get_integrator("rk4") is rk4_step
        assert get_integrator("heun") is heun_step
        assert get_integrator("rk2") is heun_step
        assert get_integrator("euler") is euler_step

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_integrator("leapfrog")

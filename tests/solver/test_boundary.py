"""Boundary-condition tests."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.solver import (
    EulerState,
    apply_outflow,
    apply_periodic,
    apply_reflecting,
    get_boundary_condition,
)


def random_state(rng, shape=(6, 7)):
    state = EulerState.zeros(shape)
    state.p[...] = rng.standard_normal(shape)
    state.rho[...] = rng.standard_normal(shape)
    state.u[...] = rng.standard_normal(shape)
    state.v[...] = rng.standard_normal(shape)
    return state


class TestOutflow:
    def test_pressure_zero_on_all_walls(self, rng):
        """Paper Sec. IV-A: p' = 0 at all four boundaries."""
        state = apply_outflow(random_state(rng))
        assert np.all(state.p[0, :] == 0.0)
        assert np.all(state.p[-1, :] == 0.0)
        assert np.all(state.p[:, 0] == 0.0)
        assert np.all(state.p[:, -1] == 0.0)

    def test_neumann_for_other_fields(self, rng):
        """Homogeneous Neumann: wall value equals first interior line."""
        state = apply_outflow(random_state(rng))
        for field in (state.rho, state.u, state.v):
            assert np.allclose(field[0, :], field[1, :])
            assert np.allclose(field[-1, :], field[-2, :])
            assert np.allclose(field[:, 0], field[:, 1])
            assert np.allclose(field[:, -1], field[:, -2])

    def test_interior_untouched(self, rng):
        state = random_state(rng)
        interior_before = state.p[1:-1, 1:-1].copy()
        apply_outflow(state)
        assert np.allclose(state.p[1:-1, 1:-1], interior_before)

    def test_in_place(self, rng):
        state = random_state(rng)
        assert apply_outflow(state) is state


class TestReflecting:
    def test_normal_velocity_zero(self, rng):
        state = apply_reflecting(random_state(rng))
        assert np.all(state.u[:, 0] == 0.0)
        assert np.all(state.u[:, -1] == 0.0)
        assert np.all(state.v[0, :] == 0.0)
        assert np.all(state.v[-1, :] == 0.0)

    def test_pressure_neumann(self, rng):
        state = apply_reflecting(random_state(rng))
        assert np.allclose(state.p[:, 0], state.p[:, 1])
        assert np.allclose(state.p[0, :], state.p[1, :])


class TestPeriodic:
    def test_edges_wrap(self, rng):
        state = apply_periodic(random_state(rng))
        for field in (state.p, state.rho, state.u, state.v):
            assert np.allclose(field[0, :], field[-2, :])
            assert np.allclose(field[-1, :], field[1, :])
            assert np.allclose(field[:, 0], field[:, -2])
            assert np.allclose(field[:, -1], field[:, 1])


class TestRegistry:
    def test_lookup(self):
        assert get_boundary_condition("outflow") is apply_outflow
        assert get_boundary_condition("periodic") is apply_periodic
        assert get_boundary_condition("reflecting") is apply_reflecting

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_boundary_condition("absorbing")

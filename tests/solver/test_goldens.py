"""Bit-exactness goldens pinning the paper's default scenario.

These hashes were captured from the pre-scenario-registry code (PR 6
tree).  The scenario-registry refactor must keep every one of them
byte-identical: the registry may *add* physics, but the paper's
baseline pipeline (Gaussian pulse, linearized Euler, outflow walls,
RK4, CFL 0.5) must not drift by a single ULP.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.data.generation import generate_multi_pulse_dataset, generate_paper_dataset
from repro.solver import EulerState, get_boundary_condition


def _sha(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def _random_state() -> EulerState:
    rng = np.random.default_rng(42)
    fields = [rng.standard_normal((9, 7)) for _ in range(4)]
    return EulerState(p=fields[0], rho=fields[1], u=fields[2], v=fields[3])


class TestPaperDatasetGolden:
    def test_paper_dataset_bit_exact(self):
        data = generate_paper_dataset(grid_size=24, num_snapshots=8, num_train=5)
        assert _sha(data.train.snapshots) == (
            "bd4295167449407e0e200a3d7e2fc40f49403edece08ab4b82b39dca30a1a374"
        )
        assert _sha(data.validation.snapshots) == (
            "bd5c48c39bf799d4d8f378cd6b67da976ce77875d04f8fbde4b823d49d0f7d6d"
        )
        assert data.dt == 0.025983230637704212

    def test_multi_pulse_dataset_bit_exact(self):
        data = generate_multi_pulse_dataset(
            grid_size=24, num_snapshots=8, num_train=5, num_pulses=2, seed=3
        )
        assert _sha(data.train.snapshots) == (
            "f7a87827126edb2de16cbd2db8bbd717616aaf402a494cd8db5f53a56644ac8e"
        )


class TestBoundaryGoldens:
    """The per-side decomposition of boundary.py must reproduce the
    original whole-domain application exactly, corners included."""

    def _check(self, name: str, expected: str):
        state = _random_state()
        get_boundary_condition(name)(state)
        assert _sha(state.to_array()) == expected, name

    def test_outflow(self):
        self._check(
            "outflow",
            "0b7bf4756ce56ad419ffe10fc4c0cfe25de4ccb766ad72d98c6e59a708a5836a",
        )

    def test_reflecting(self):
        self._check(
            "reflecting",
            "9191932840da0a75cc0c7142b93ee594d3c70f6b7615a69028f9486b587e771b",
        )

    def test_periodic(self):
        self._check(
            "periodic",
            "cf5ebf41bf0ea8ae00f8e1ceda37d718a6a703997f7c69cb56b5bdf56b5e9329",
        )

    def test_sponge(self):
        self._check(
            "sponge",
            "8402dbc99500723b444450b31daea0b940c68c6169a756095942d4f00bb4066c",
        )

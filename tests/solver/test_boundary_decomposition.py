"""Boundary conditions compose with domain decomposition.

The pinned property: applying a wall-writing condition to the whole
domain gives bit-identical fields to decomposing the domain, applying
:func:`local_boundary` on each rank's *physical* walls only
(:meth:`BlockDecomposition.physical_sides`), and reassembling.
Interior block edges are never written — those lines belong to the
halo exchange.  Periodic walls have no local stencil at all: they are
closed by the periodic halo wrap.
"""

import numpy as np
import pytest

from repro import mpi
from repro.domain import BlockDecomposition, HaloExchanger
from repro.solver import (
    EulerState,
    apply_periodic,
    apply_reflecting,
    get_boundary_condition,
    local_boundary,
)


def _random_state(shape=(12, 14), seed=7):
    rng = np.random.default_rng(seed)
    return EulerState(*(rng.standard_normal(shape) for _ in range(4)))


def _decompose_apply_assemble(state, name, decomposition, **kwargs):
    """Apply ``name`` per rank on physical sides only; reassemble."""
    global_field = state.to_array()
    pieces = []
    for rank in range(decomposition.num_subdomains):
        sub = decomposition.subdomain(rank)
        local = EulerState.from_array(decomposition.extract(global_field, rank))
        bc = local_boundary(
            name,
            decomposition.physical_sides(rank),
            y_range=sub.y_range,
            x_range=sub.x_range,
            global_shape=decomposition.field_shape,
            **kwargs,
        )
        pieces.append(bc(local).to_array())
    return decomposition.assemble(pieces)


@pytest.mark.parametrize("name", ["outflow", "reflecting", "sponge"])
@pytest.mark.parametrize("pgrid", [(1, 1), (2, 2), (3, 2), (1, 4)])
def test_local_boundary_matches_global(name, pgrid):
    reference = get_boundary_condition(name)(_random_state()).to_array()
    assembled = _decompose_apply_assemble(
        _random_state(), name, BlockDecomposition((12, 14), pgrid)
    )
    np.testing.assert_array_equal(assembled, reference)


def test_interior_rank_is_untouched():
    """A rank with no physical wall (3x3 centre) must not be written."""
    decomposition = BlockDecomposition((12, 12), (3, 3))
    assert decomposition.physical_sides(4) == ()
    state = _random_state(shape=(4, 4))
    before = state.to_array().copy()
    local_boundary("reflecting", decomposition.physical_sides(4))(state)
    np.testing.assert_array_equal(state.to_array(), before)


def test_periodic_has_no_physical_sides():
    decomposition = BlockDecomposition((12, 12), (2, 2), periodic=(True, True))
    assert all(
        decomposition.physical_sides(rank) == ()
        for rank in range(decomposition.num_subdomains)
    )
    state = _random_state()
    before = state.to_array().copy()
    local_boundary("periodic", ())(state)
    np.testing.assert_array_equal(state.to_array(), before)


def test_periodic_wrap_halo_supplies_the_bc_lines():
    """On a state satisfying the periodic identification (i.e. after
    ``apply_periodic``), the wrapped halo delivers exactly the lines the
    global BC maintains: the top rank's low-y halo row is the bottom
    wall row, which the global BC pins to the first interior row."""
    state = apply_periodic(_random_state(shape=(12, 12)))
    field = state.to_array()
    decomposition = BlockDecomposition((12, 12), (2, 2), periodic=(True, True))
    extended = decomposition.extract(field, rank=0, halo=1)
    np.testing.assert_array_equal(extended[:, 0, 1:-1], field[:, -1, : 12 // 2])
    np.testing.assert_array_equal(extended[:, 0, 1:-1], field[:, 1, : 12 // 2])


def test_mixed_periodic_reflecting_composition():
    """Periodic in x, reflecting walls in y: only the y walls get a
    stencil; the x wrap is the halo's job."""
    decomposition = BlockDecomposition((12, 14), (2, 2), periodic=(False, True))
    sides = [decomposition.physical_sides(rank) for rank in range(4)]
    assert sides == [("y_lo",), ("y_lo",), ("y_hi",), ("y_hi",)]

    # Reference: reflecting applied to the y walls of the whole domain.
    reference = _random_state()
    for side in ("y_lo", "y_hi"):
        from repro.solver import apply_reflecting_side

        apply_reflecting_side(reference, side)
    assembled = _decompose_apply_assemble(
        _random_state(), "reflecting", decomposition
    )
    np.testing.assert_array_equal(assembled, reference.to_array())


def test_halo_exchange_respects_physical_walls():
    """End to end over the threads backend: halo-extended blocks carry
    neighbour data on interior edges, wrap data on periodic walls and
    fill on physical walls — exactly :meth:`extract` with a halo."""
    rng = np.random.default_rng(3)
    field = rng.standard_normal((4, 12, 12))
    decomposition = BlockDecomposition((12, 12), (2, 2), periodic=(True, False))

    def program(comm):
        local = decomposition.extract(field, comm.rank)
        return HaloExchanger(comm, decomposition, halo=2).exchange(local)

    for rank, extended in enumerate(mpi.run_parallel(program, 4)):
        np.testing.assert_array_equal(
            extended, decomposition.extract(field, rank, halo=2)
        )


def test_reflecting_walls_then_halo_is_order_independent():
    """BC on physical walls and halo exchange touch disjoint lines, so
    global-BC-then-extract equals extract-then-local-BC (with halos
    taken from the BC'd global field in both cases)."""
    decomposition = BlockDecomposition((12, 14), (2, 2))
    reference = apply_reflecting(_random_state()).to_array()

    state = _random_state()
    for rank in range(4):
        sub = decomposition.subdomain(rank)
        local = EulerState.from_array(
            decomposition.extract(state.to_array(), rank)
        )
        bc = local_boundary("reflecting", decomposition.physical_sides(rank))
        interior = bc(local).to_array()
        # Halo lines come from the globally-BC'd field: interior edges
        # of `interior` must match it exactly for the exchange to be
        # consistent.
        np.testing.assert_array_equal(
            interior, reference[:, sub.y_slice, sub.x_slice]
        )

"""Parallel-in-time Parareal driver: convergence, operators, stepping API.

The load-bearing pin is :class:`TestConvergence`: on both benchmark
scenarios (``euler-gaussian``: Euler states through ``Simulation``;
``allen-cahn``: field stacks through the Strang-split
``FieldSimulation``) and on both execution backends, the Parareal
iteration must reproduce the serial fine trajectory within tolerance —
even with an untrained (random) CNN as coarse propagator, because the
correction's fixed point is the fine solution and the exactness
property bounds the sweep count by the slice count.
"""

import numpy as np
import pytest

from repro import mpi, solver
from repro.core import build_paper_cnn
from repro.domain.decomposition import BlockDecomposition
from repro.exceptions import ConfigurationError
from repro.scenarios import (
    build_grid,
    build_initial_state,
    build_simulation,
    channels,
    get_scenario,
    parareal_config,
)
from repro.solver.parareal import (
    CoarseOperator,
    EnsembleCoarseOperator,
    ModelCoarseOperator,
    PararealConfig,
    PararealDriver,
    serial_fine,
)

GRID = 24


def scenario_setup(name, seed=None):
    """(simulation, initial array, channel count) at smoke-test scale."""
    spec = get_scenario(name)
    grid = build_grid(spec, GRID)
    simulation = build_simulation(spec, grid)
    initial = build_initial_state(spec, grid, seed=seed)
    if hasattr(initial, "to_array"):
        initial = initial.to_array()
    return simulation, np.asarray(initial, dtype=float), len(channels(spec))


def random_model(num_channels, seed=0):
    return build_paper_cnn(
        "neighbor_first",
        rng=np.random.default_rng(seed),
        channels=(num_channels, 6, 16, 6, num_channels),
    )


class FineAsCoarse(CoarseOperator):
    """G == F: the Parareal iteration must then converge in one sweep."""

    def __init__(self, simulation, fine_steps_per_coarse):
        self.simulation = simulation
        self.fine_steps_per_coarse = fine_steps_per_coarse

    def spawn(self):
        return self

    def advance(self, state, num_steps):
        return self.simulation.advance_array(
            state, num_steps * self.fine_steps_per_coarse
        )


class TestPararealConfig:
    def test_defaults(self):
        config = PararealConfig()
        assert config.slices == 8
        assert config.fine_steps_per_slice == 1
        assert config.iteration_cap == 8

    def test_fine_steps_per_slice(self):
        config = PararealConfig(coarse_steps=3, fine_steps_per_coarse=5)
        assert config.fine_steps_per_slice == 15

    def test_max_iterations_overrides_cap(self):
        assert PararealConfig(slices=6, max_iterations=2).iteration_cap == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"slices": 0},
            {"tolerance": 0.0},
            {"tolerance": -1e-3},
            {"coarse_steps": 0},
            {"fine_steps_per_coarse": 0},
            {"max_iterations": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            PararealConfig(**kwargs)

    def test_scenario_defaults(self):
        config = parareal_config("allen-cahn")
        spec = get_scenario("allen-cahn")
        assert config.slices == spec.parareal_slices
        assert config.tolerance == spec.parareal_tolerance
        # One coarse application spans the snapshot spacing the CNN
        # would be trained on.
        assert config.fine_steps_per_coarse == spec.steps_per_snapshot

    def test_scenario_overrides_win(self):
        config = parareal_config("allen-cahn", slices=3, tolerance=0.5)
        assert config.slices == 3
        assert config.tolerance == 0.5


class TestAdvanceArray:
    """The unified stepping surface shared by both simulation drivers."""

    def test_euler_advance_array_matches_state_advance(self):
        simulation, initial, _ = scenario_setup("euler-gaussian")
        state = solver.EulerState.from_array(initial)
        expected = simulation.advance(state, 3).to_array()
        got = simulation.advance_array(initial, 3)
        assert np.array_equal(got, expected)

    def test_field_advance_array_matches_advance(self):
        simulation, initial, _ = scenario_setup("allen-cahn")
        expected = simulation.advance(initial.copy(), 4)
        got = simulation.advance_array(initial, 4)
        assert np.array_equal(got, expected)

    def test_advance_composes(self):
        simulation, initial, _ = scenario_setup("allen-cahn")
        two_then_one = simulation.advance_array(
            simulation.advance_array(initial, 2), 1
        )
        assert np.array_equal(simulation.advance_array(initial, 3), two_then_one)

    def test_run_still_matches_advance_array(self):
        # run() records what advance_array computes: one loop, two views.
        simulation, initial, _ = scenario_setup("allen-cahn")
        result = simulation.run(initial, num_snapshots=3, steps_per_snapshot=2)
        prepared = result.snapshots[0]
        assert np.array_equal(
            result.snapshots[1], simulation.advance_array(prepared, 2)
        )


class TestCoarseOperators:
    def test_model_operator_plan_matches_module_forward(self):
        simulation, initial, num_channels = scenario_setup("euler-gaussian")
        model = random_model(num_channels)
        with_plan = ModelCoarseOperator(model, use_plan=True)
        without_plan = ModelCoarseOperator(model, use_plan=False)
        np.testing.assert_allclose(
            with_plan.advance(initial, 2),
            without_plan.advance(initial, 2),
            rtol=1e-12,
            atol=1e-12,
        )

    def test_ensemble_matches_parallel_predictor_step(self):
        from repro.core import ParallelPredictor

        _, initial, num_channels = scenario_setup("euler-gaussian")
        models = [random_model(num_channels, seed=r) for r in range(4)]
        decomposition = BlockDecomposition((GRID, GRID), (2, 2))
        operator = EnsembleCoarseOperator(models, decomposition)
        predictor = ParallelPredictor(models, decomposition)
        np.testing.assert_allclose(
            operator.advance(initial, 1),
            predictor.predict_step(initial),
            rtol=1e-12,
            atol=1e-12,
        )

    def test_ensemble_rejects_model_count_mismatch(self):
        _, _, num_channels = scenario_setup("euler-gaussian")
        models = [random_model(num_channels, seed=r) for r in range(3)]
        with pytest.raises(ConfigurationError, match="3 models for 4"):
            EnsembleCoarseOperator(models, BlockDecomposition((GRID, GRID), (2, 2)))

    def test_spawn_returns_fresh_instance(self):
        _, _, num_channels = scenario_setup("euler-gaussian")
        operator = ModelCoarseOperator(random_model(num_channels))
        spawned = operator.spawn()
        assert spawned is not operator
        assert spawned.model is operator.model


class TestConvergence:
    """The acceptance pin: Parareal == serial fine, both scenarios x
    both backends, with an untrained CNN as coarse propagator."""

    @pytest.mark.parametrize("scenario", ["euler-gaussian", "allen-cahn"])
    @pytest.mark.parametrize(
        "execution,slices",
        [("threads", 6), ("processes", 4)],
        ids=["threads", "processes"],
    )
    def test_matches_serial_fine(self, scenario, execution, slices):
        simulation, initial, num_channels = scenario_setup(scenario)
        operator = ModelCoarseOperator(random_model(num_channels))
        config = parareal_config(
            scenario, slices=slices, tolerance=1e-9, fine_steps_per_coarse=2
        )
        driver = PararealDriver(simulation, operator, config)
        result = driver.solve(initial, execution=execution)
        reference = serial_fine(simulation, initial, config)

        assert result.converged
        assert result.iterations <= config.slices
        assert result.states.shape == (slices + 1, num_channels, GRID, GRID)
        scale = np.max(np.abs(reference))
        assert np.max(np.abs(result.states - reference)) <= 1e-12 * scale

    def test_exact_coarse_operator_converges_in_one_sweep(self):
        simulation, initial, _ = scenario_setup("allen-cahn")
        config = PararealConfig(slices=6, tolerance=1e-6, fine_steps_per_coarse=2)
        operator = FineAsCoarse(simulation, config.fine_steps_per_coarse)
        result = PararealDriver(simulation, operator, config).solve(initial)
        assert result.converged
        assert result.iterations == 1

    def test_ensemble_coarse_operator_converges(self):
        simulation, initial, num_channels = scenario_setup("euler-gaussian")
        models = [random_model(num_channels, seed=r) for r in range(4)]
        operator = EnsembleCoarseOperator(
            models, BlockDecomposition((GRID, GRID), (2, 2))
        )
        config = PararealConfig(slices=4, tolerance=1e-9, fine_steps_per_coarse=2)
        result = PararealDriver(simulation, operator, config).solve(initial)
        reference = serial_fine(simulation, initial, config)
        assert result.converged
        scale = np.max(np.abs(reference))
        assert np.max(np.abs(result.states - reference)) <= 1e-12 * scale

    def test_work_accounting(self):
        simulation, initial, num_channels = scenario_setup("allen-cahn")
        operator = ModelCoarseOperator(random_model(num_channels))
        config = PararealConfig(
            slices=4, tolerance=1e-9, coarse_steps=2, fine_steps_per_coarse=3
        )
        result = PararealDriver(simulation, operator, config).solve(initial)
        sweeps = result.iterations
        # Sweep 0 runs one coarse slice per rank; each correction sweep
        # adds one coarse and one fine slice per rank.
        assert result.coarse_steps_applied == 4 * config.coarse_steps * (sweeps + 1)
        assert result.fine_steps_applied == 4 * config.fine_steps_per_slice * sweeps
        assert len(result.deltas) == sweeps
        assert result.dt == simulation.dt
        assert result.num_slices == 4

    def test_initial_shape_validated(self):
        simulation, _, num_channels = scenario_setup("allen-cahn")
        operator = ModelCoarseOperator(random_model(num_channels))
        driver = PararealDriver(simulation, operator, PararealConfig(slices=2))
        with pytest.raises(ConfigurationError, match="does not match"):
            driver.solve(np.zeros((num_channels, GRID, GRID + 1)))

    def test_backends_agree_bitwise(self):
        simulation, initial, num_channels = scenario_setup("allen-cahn")
        operator = ModelCoarseOperator(random_model(num_channels))
        config = PararealConfig(slices=4, tolerance=1e-9, fine_steps_per_coarse=2)
        driver = PararealDriver(simulation, operator, config)
        threaded = driver.solve(initial, execution="threads")
        forked = driver.solve(initial, execution="processes")
        assert np.array_equal(threaded.states, forked.states)
        assert threaded.iterations == forked.iterations
        assert threaded.deltas == forked.deltas


class TestObservability:
    def test_spans_recorded(self):
        from repro.obs import trace

        simulation, initial, num_channels = scenario_setup("allen-cahn")
        operator = ModelCoarseOperator(random_model(num_channels))
        config = PararealConfig(slices=2, tolerance=1e-9, fine_steps_per_coarse=2)
        trace.reset()
        with trace.tracing():
            PararealDriver(simulation, operator, config).solve(initial)
        names = {span.name for span in trace.spans()}
        assert {
            "parareal.solve",
            "parareal.coarse",
            "parareal.fine",
            "parareal.correct",
        } <= names

    def test_handoff_tags_stay_in_user_range(self):
        from repro.solver.parareal import _handoff_tag

        assert 0 <= _handoff_tag(0) < mpi.MAX_USER_TAG
        assert 0 <= _handoff_tag(10_000) < mpi.MAX_USER_TAG

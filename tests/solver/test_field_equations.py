"""New non-Euler physics: Diffusion2D, AllenCahn, FieldSimulation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SolverError
from repro.solver import (
    AllenCahn,
    Diffusion2D,
    FieldSimulation,
    LinearizedEuler,
    UniformGrid2D,
    available_equations,
    get_equation,
    get_field_boundary,
    random_phase_field,
    scalar_blobs,
    scalar_gaussian,
)


@pytest.fixture
def grid():
    return UniformGrid2D.square(32, 1.0)


class TestEquationLookup:
    def test_catalogue(self):
        assert available_equations() == ("allen_cahn", "diffusion", "linearized_euler")

    def test_instantiation_with_params(self):
        assert get_equation("diffusion", nu=0.3).nu == pytest.approx(0.3)
        assert get_equation("allen_cahn", epsilon=0.02).epsilon == pytest.approx(0.02)
        euler = get_equation("linearized_euler", dissipation=0.05, p_c=2.0)
        assert isinstance(euler, LinearizedEuler)
        assert euler.dissipation == pytest.approx(0.05)
        assert euler.background.p_c == pytest.approx(2.0)

    def test_unknown_name_and_bad_params(self):
        with pytest.raises(ConfigurationError, match="unknown equation"):
            get_equation("burgers")
        with pytest.raises(ConfigurationError, match="bad parameters"):
            get_equation("diffusion", viscosity=0.1)

    def test_invalid_coefficients(self):
        with pytest.raises(SolverError):
            Diffusion2D(nu=0.0)
        with pytest.raises(SolverError):
            AllenCahn(epsilon=-1.0)


class TestDiffusion2D:
    def test_rhs_is_the_scaled_laplacian_of_a_quadratic(self, grid):
        # u = x^2 + y^2 has Laplacian 4 everywhere (exact for the
        # second-order stencil on interior points).
        X, Y = grid.meshgrid()
        fields = (X**2 + Y**2)[None]
        rhs = Diffusion2D(nu=0.25).rhs_array(fields, grid.dx, grid.dy)
        np.testing.assert_allclose(rhs[0, 2:-2, 2:-2], 0.25 * 4.0, rtol=1e-10)

    def test_stable_dt_scales_like_dx_squared(self):
        eq = Diffusion2D(nu=0.1)
        coarse = eq.stable_dt(0.1, 0.1)
        fine = eq.stable_dt(0.05, 0.05)
        assert fine == pytest.approx(coarse / 4)

    def test_l2_energy_decays(self, grid):
        sim = FieldSimulation(grid, Diffusion2D(nu=0.1), boundary="neumann")
        result = sim.run(scalar_blobs(grid, seed=1), num_snapshots=10)
        energies = result.energies
        assert np.all(np.diff(energies) <= 1e-12)
        assert energies[-1] < energies[0]


class TestAllenCahn:
    def test_react_exact_flows_toward_the_wells(self):
        eq = AllenCahn()
        u = np.array([-0.5, -0.01, 0.0, 0.01, 0.5])
        later = eq._react_exact(u, 10.0)
        np.testing.assert_allclose(later, np.sign(u), atol=1e-3)
        # u = 0 is the (unstable) fixed point.
        assert later[2] == 0.0

    def test_strang_step_preserves_the_invariant_band(self, grid):
        eq = AllenCahn(epsilon=0.01)
        u = random_phase_field(grid, amplitude=0.9, seed=3)
        dt = eq.stable_dt(grid.dx, grid.dy)
        for _ in range(5):
            u = eq.strang_step(u, grid.dx, grid.dy, dt)
        assert np.max(np.abs(u)) <= 1.0 + 1e-12

    def test_ginzburg_landau_energy_decreases(self, grid):
        sim = FieldSimulation(
            grid, AllenCahn(epsilon=0.01), boundary="periodic", integrator="strang"
        )
        result = sim.run(
            random_phase_field(grid, seed=2), num_snapshots=6, steps_per_snapshot=5
        )
        energies = result.energies
        assert energies[-1] < energies[0]

    def test_phases_separate_from_small_noise(self, grid):
        """Spinodal decomposition: |u| grows from ~0.1 toward ~1."""
        sim = FieldSimulation(
            grid, AllenCahn(epsilon=0.01), boundary="periodic", integrator="strang"
        )
        initial = random_phase_field(grid, amplitude=0.1, seed=0)
        result = sim.run(initial, num_snapshots=2, steps_per_snapshot=80)
        assert np.mean(np.abs(result.snapshots[-1])) > 5 * np.mean(np.abs(initial))


class TestFieldSimulation:
    def test_snapshot_shapes_and_dt(self, grid):
        sim = FieldSimulation(grid, Diffusion2D(nu=0.1), boundary="neumann")
        result = sim.run(scalar_gaussian(grid), num_snapshots=4, steps_per_snapshot=3)
        assert result.snapshots.shape == (4, 1, 32, 32)
        assert result.dt == pytest.approx(sim.dt)
        np.testing.assert_allclose(np.diff(result.times), 3 * sim.dt)

    def test_strang_requires_a_split_stepper(self, grid):
        with pytest.raises(SolverError, match="strang"):
            FieldSimulation(grid, Diffusion2D(nu=0.1), integrator="strang")

    def test_channel_mismatch_raises(self, grid):
        sim = FieldSimulation(grid, Diffusion2D(nu=0.1))
        with pytest.raises(SolverError):
            sim.run(np.zeros((2, 32, 32)), num_snapshots=2)

    def test_advance_is_not_in_place(self, grid):
        sim = FieldSimulation(grid, Diffusion2D(nu=0.1), boundary="neumann")
        fields = scalar_gaussian(grid)
        before = fields.copy()
        sim.advance(fields, num_steps=2)
        np.testing.assert_array_equal(fields, before)

    def test_periodic_boundary_wraps_edges(self, grid):
        sim = FieldSimulation(grid, Diffusion2D(nu=0.1), boundary="periodic")
        out = sim.advance(scalar_blobs(grid, seed=4), num_steps=1)
        np.testing.assert_array_equal(out[:, 0, :], out[:, -2, :])
        np.testing.assert_array_equal(out[:, -1, :], out[:, 1, :])


class TestScalarInitialConditions:
    def test_scalar_gaussian_peak_and_shape(self, grid):
        field = scalar_gaussian(grid, amplitude=2.0, half_width=0.3)
        assert field.shape == (1, 32, 32)
        assert np.max(field) <= 2.0
        assert field[0, 16, 16] == pytest.approx(2.0, rel=0.05)

    def test_scalar_blobs_seeded_and_signed(self, grid):
        a = scalar_blobs(grid, num_blobs=4, seed=5)
        assert np.array_equal(a, scalar_blobs(grid, num_blobs=4, seed=5))
        assert a.min() < 0 < a.max()

    def test_random_phase_amplitude_band(self, grid):
        field = random_phase_field(grid, amplitude=0.2, seed=0)
        assert np.max(np.abs(field)) <= 0.2 + 1e-12
        assert np.max(np.abs(field)) > 0.01

    def test_validation(self, grid):
        with pytest.raises(SolverError):
            scalar_gaussian(grid, half_width=0.0)
        with pytest.raises(SolverError):
            scalar_blobs(grid, num_blobs=0)


class TestFieldBoundaryLookup:
    def test_known_names(self):
        for name in ("periodic", "neumann", "dirichlet"):
            assert callable(get_field_boundary(name))

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_field_boundary("outflow-typo")

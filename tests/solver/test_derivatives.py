"""Finite-difference operator accuracy tests."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.solver import ddx, ddy, divergence, laplacian


def second_order_rate(errors, factors=2.0):
    """Observed convergence order from errors at h and h/2."""
    return np.log2(errors[0] / errors[1])


class TestExactness:
    def test_linear_exact_interior_and_boundary(self):
        """A 2nd-order stencil differentiates polynomials of degree <= 2
        exactly (including the one-sided edge stencils)."""
        x = np.linspace(0.0, 1.0, 11)
        X, Y = np.meshgrid(x, x)
        f = 3.0 * X + 2.0 * Y + 1.0
        assert np.allclose(ddx(f, x[1] - x[0]), 3.0)
        assert np.allclose(ddy(f, x[1] - x[0]), 2.0)

    def test_quadratic_exact(self):
        x = np.linspace(-1.0, 1.0, 9)
        h = x[1] - x[0]
        X, Y = np.meshgrid(x, x)
        f = X**2 + X * Y
        assert np.allclose(ddx(f, h), 2.0 * X + Y)
        assert np.allclose(ddy(f, h), X)


class TestConvergence:
    def test_ddx_second_order(self):
        errors = []
        for n in (33, 65):
            x = np.linspace(0.0, 1.0, n)
            h = x[1] - x[0]
            X, Y = np.meshgrid(x, x)
            f = np.sin(2 * np.pi * X) * np.cos(2 * np.pi * Y)
            exact = 2 * np.pi * np.cos(2 * np.pi * X) * np.cos(2 * np.pi * Y)
            errors.append(np.max(np.abs(ddx(f, h) - exact)))
        assert second_order_rate(errors) > 1.8

    def test_ddy_second_order(self):
        errors = []
        for n in (33, 65):
            x = np.linspace(0.0, 1.0, n)
            h = x[1] - x[0]
            X, Y = np.meshgrid(x, x)
            f = np.cos(2 * np.pi * Y) * X
            exact = -2 * np.pi * np.sin(2 * np.pi * Y) * X
            errors.append(np.max(np.abs(ddy(f, h) - exact)))
        assert second_order_rate(errors) > 1.8

    def test_laplacian_interior_second_order(self):
        errors = []
        for n in (33, 65):
            x = np.linspace(0.0, 1.0, n)
            h = x[1] - x[0]
            X, Y = np.meshgrid(x, x)
            f = np.sin(np.pi * X) * np.sin(np.pi * Y)
            exact = -2 * np.pi**2 * f
            approx = laplacian(f, h, h)
            errors.append(np.max(np.abs(approx - exact)[1:-1, 1:-1]))
        assert second_order_rate(errors) > 1.8


class TestDivergence:
    def test_divergence_free_field(self):
        x = np.linspace(0.0, 1.0, 41)
        h = x[1] - x[0]
        X, Y = np.meshgrid(x, x)
        # (u, v) = (dpsi/dy, -dpsi/dx) is divergence-free for any psi.
        u = np.cos(np.pi * X) * np.cos(np.pi * Y)
        v = -np.sin(np.pi * X) * -np.sin(np.pi * Y) * (-1.0)
        psi_u = np.pi * np.cos(np.pi * X) * np.cos(np.pi * Y)
        psi_v = np.pi * np.sin(np.pi * X) * np.sin(np.pi * Y)
        div = divergence(psi_u, psi_v, h, h)
        # Analytic divergence is zero; discrete should be O(h^2)-small.
        assert np.max(np.abs(div[1:-1, 1:-1])) < 0.05

    def test_divergence_is_sum_of_partials(self, rng):
        f = rng.standard_normal((8, 8))
        g = rng.standard_normal((8, 8))
        assert np.allclose(divergence(f, g, 0.1, 0.2), ddx(f, 0.1) + ddy(g, 0.2))


class TestFourthOrder:
    def test_cubic_exact_including_edges(self):
        x = np.linspace(0.0, 1.0, 11)
        h = x[1] - x[0]
        X, Y = np.meshgrid(x, x)
        f = X**3 + X * Y**2
        assert np.allclose(ddx(f, h, order=4), 3.0 * X**2 + Y**2, atol=1e-10)
        g = Y**3 + Y * X**2
        assert np.allclose(ddy(g, h, order=4), 3.0 * Y**2 + X**2, atol=1e-10)

    def test_fourth_order_convergence(self):
        errors = []
        for n in (33, 65):
            x = np.linspace(0.0, 1.0, n)
            h = x[1] - x[0]
            X, Y = np.meshgrid(x, x)
            f = np.sin(2 * np.pi * X) * np.cos(2 * np.pi * Y)
            exact = 2 * np.pi * np.cos(2 * np.pi * X) * np.cos(2 * np.pi * Y)
            errors.append(np.max(np.abs(ddx(f, h, order=4) - exact)))
        assert second_order_rate(errors) > 3.5

    def test_much_more_accurate_than_second_order(self):
        x = np.linspace(0.0, 1.0, 65)
        h = x[1] - x[0]
        X, Y = np.meshgrid(x, x)
        f = np.sin(2 * np.pi * X) * np.cos(2 * np.pi * Y)
        exact = 2 * np.pi * np.cos(2 * np.pi * X) * np.cos(2 * np.pi * Y)
        err2 = np.max(np.abs(ddx(f, h, order=2) - exact))
        err4 = np.max(np.abs(ddx(f, h, order=4) - exact))
        assert err4 < err2 / 20.0

    def test_solver_accepts_order4(self):
        from repro.solver import (
            LinearizedEuler,
            Simulation,
            UniformGrid2D,
            paper_initial_condition,
        )

        grid = UniformGrid2D.square(32)
        sim = Simulation(grid, LinearizedEuler(order=4), cfl=0.4)
        result = sim.run(paper_initial_condition(grid), num_snapshots=5)
        assert np.isfinite(result.snapshots).all()

    def test_bad_order_rejected(self):
        from repro.solver import LinearizedEuler

        with pytest.raises(SolverError):
            LinearizedEuler(order=3)
        with pytest.raises(SolverError):
            ddx(np.zeros((8, 8)), 0.1, order=6)

    def test_order4_needs_six_points(self):
        with pytest.raises(SolverError):
            ddx(np.zeros((8, 5)), 0.1, order=4)


class TestValidation:
    def test_too_narrow_raises(self):
        with pytest.raises(SolverError):
            ddx(np.zeros((5, 2)), 0.1)
        with pytest.raises(SolverError):
            ddy(np.zeros((2, 5)), 0.1)

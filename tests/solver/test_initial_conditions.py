"""Initial-condition tests."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.solver import (
    Background,
    UniformGrid2D,
    gaussian_pulse,
    multiple_pulses,
    paper_initial_condition,
    plane_wave,
)


class TestGaussianPulse:
    def test_peak_at_center_with_amplitude(self):
        grid = UniformGrid2D.square(65)
        state = gaussian_pulse(grid, amplitude=0.5, half_width=0.3, center=(0.0, 0.0))
        cy, cx = 32, 32
        assert np.isclose(state.p[cy, cx], 0.5)
        assert state.p.max() == state.p[cy, cx]

    def test_half_width_at_half_maximum(self):
        """p at distance half_width from the centre is amplitude/2."""
        grid = UniformGrid2D.square(201)
        state = gaussian_pulse(grid, amplitude=1.0, half_width=0.3)
        # x = 0.3 is at index 130 on [-1, 1] with 201 points.
        index = np.argmin(np.abs(grid.x - 0.3))
        assert np.isclose(state.p[100, index], 0.5, atol=0.01)

    def test_default_amplitude_scales_with_background(self):
        grid = UniformGrid2D.square(33)
        bar = gaussian_pulse(grid, background=Background())
        si = gaussian_pulse(grid, background=Background.si_air())
        assert np.isclose(bar.p.max(), 0.5)
        assert np.isclose(si.p.max(), 0.5e5)

    def test_paper_ic_fluid_at_rest_no_density(self):
        """Sec. IV-A: fluid at rest, density perturbation zero."""
        grid = UniformGrid2D.square(33)
        state = paper_initial_condition(grid)
        assert np.all(state.u == 0.0)
        assert np.all(state.v == 0.0)
        assert np.all(state.rho == 0.0)
        assert np.isclose(state.p.max(), 0.5)

    def test_isentropic_density_relation(self):
        grid = UniformGrid2D.square(33)
        bg = Background()
        state = gaussian_pulse(grid, background=bg, isentropic=True)
        assert np.allclose(state.rho, state.p / bg.sound_speed**2)

    def test_off_center_pulse(self):
        grid = UniformGrid2D.square(65)
        state = gaussian_pulse(grid, center=(0.5, -0.25))
        iy, ix = np.unravel_index(np.argmax(state.p), state.p.shape)
        assert np.isclose(grid.x[ix], 0.5, atol=grid.dx)
        assert np.isclose(grid.y[iy], -0.25, atol=grid.dy)

    def test_validation(self):
        grid = UniformGrid2D.square(17)
        with pytest.raises(SolverError):
            gaussian_pulse(grid, amplitude=0.0)
        with pytest.raises(SolverError):
            gaussian_pulse(grid, half_width=0.0)


class TestPlaneWave:
    def test_acoustic_relations(self):
        grid = UniformGrid2D.square(65)
        bg = Background()
        state = plane_wave(grid, amplitude=2.0, wavenumber=(1, 0), background=bg)
        c = bg.sound_speed
        assert np.allclose(state.rho, state.p / c**2)
        assert np.allclose(state.u, state.p / (bg.rho_c * c))
        assert np.allclose(state.v, 0.0)

    def test_diagonal_wave_velocity_direction(self):
        grid = UniformGrid2D.square(65)
        state = plane_wave(grid, wavenumber=(1, 1))
        assert np.allclose(state.u, state.v)

    def test_zero_wavenumber_raises(self):
        with pytest.raises(SolverError):
            plane_wave(UniformGrid2D.square(17), wavenumber=(0, 0))


class TestMultiplePulses:
    def test_superposition(self):
        grid = UniformGrid2D.square(65)
        both = multiple_pulses(grid, [(-0.5, 0.0), (0.5, 0.0)], amplitude=1.0)
        left = gaussian_pulse(grid, 1.0, center=(-0.5, 0.0), isentropic=False)
        right = gaussian_pulse(grid, 1.0, center=(0.5, 0.0), isentropic=False)
        assert np.allclose(both.p, left.p + right.p)

    def test_empty_centers_raise(self):
        with pytest.raises(SolverError):
            multiple_pulses(UniformGrid2D.square(17), [])

"""EulerState tests."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.solver import CHANNELS, EulerState


class TestConstruction:
    def test_channel_order_is_paper_fig3(self):
        assert CHANNELS == ("p", "rho", "u", "v")

    def test_zeros(self):
        state = EulerState.zeros((4, 6))
        assert state.shape == (4, 6)
        assert state.max_abs() == 0.0

    def test_mismatched_fields_raise(self):
        with pytest.raises(ShapeError):
            EulerState(np.zeros((3, 3)), np.zeros((3, 3)), np.zeros((3, 3)), np.zeros((2, 2)))

    def test_array_roundtrip(self, rng):
        array = rng.standard_normal((4, 5, 6))
        state = EulerState.from_array(array)
        assert np.allclose(state.to_array(), array)
        assert np.allclose(state.p, array[0])
        assert np.allclose(state.v, array[3])

    def test_from_array_wrong_channels_raises(self, rng):
        with pytest.raises(ShapeError):
            EulerState.from_array(rng.standard_normal((3, 5, 5)))

    def test_from_array_copies(self):
        array = np.zeros((4, 3, 3))
        state = EulerState.from_array(array)
        state.p[0, 0] = 1.0
        assert array[0, 0, 0] == 0.0


class TestVectorSpace:
    def test_add(self, rng):
        a = EulerState.from_array(rng.standard_normal((4, 3, 3)))
        b = EulerState.from_array(rng.standard_normal((4, 3, 3)))
        assert np.allclose((a + b).to_array(), a.to_array() + b.to_array())

    def test_scalar_mul_both_sides(self, rng):
        a = EulerState.from_array(rng.standard_normal((4, 3, 3)))
        assert np.allclose((a * 2.0).to_array(), 2.0 * a.to_array())
        assert np.allclose((2.0 * a).to_array(), 2.0 * a.to_array())

    def test_axpy_in_place(self, rng):
        a = EulerState.from_array(rng.standard_normal((4, 3, 3)))
        b = EulerState.from_array(rng.standard_normal((4, 3, 3)))
        expected = a.to_array() + 0.5 * b.to_array()
        result = a.axpy(0.5, b)
        assert result is a
        assert np.allclose(a.to_array(), expected)

    def test_copy_independent(self):
        a = EulerState.zeros((3, 3))
        b = a.copy()
        b.p[0, 0] = 5.0
        assert a.p[0, 0] == 0.0


class TestDiagnostics:
    def test_max_abs(self):
        state = EulerState.zeros((3, 3))
        state.u[1, 1] = -7.0
        assert state.max_abs() == 7.0

    def test_is_finite(self):
        state = EulerState.zeros((3, 3))
        assert state.is_finite()
        state.rho[0, 0] = np.nan
        assert not state.is_finite()
        state.rho[0, 0] = np.inf
        assert not state.is_finite()

"""Property-based tests on the solver's mathematical structure."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import (
    Background,
    EulerState,
    LinearizedEuler,
    UniformGrid2D,
    apply_outflow,
    apply_periodic,
    gaussian_pulse,
    rk4_step,
)


def random_state(seed, shape=(12, 12)):
    rng = np.random.default_rng(seed)
    return EulerState.from_array(rng.standard_normal((4,) + shape))


@given(st.integers(0, 10_000), st.floats(-3.0, 3.0), st.floats(-3.0, 3.0))
@settings(max_examples=40, deadline=None)
def test_rhs_is_linear(seed, alpha, beta):
    """The linearized Euler RHS is a linear operator — by construction
    of the equations; the discrete operator must inherit it exactly."""
    eq = LinearizedEuler(dissipation=0.02)
    s1 = random_state(seed)
    s2 = random_state(seed + 1)
    combined = (alpha * s1) + (beta * s2)
    lhs = eq.rhs(combined, 0.1, 0.1).to_array()
    rhs = (
        alpha * eq.rhs(s1, 0.1, 0.1).to_array()
        + beta * eq.rhs(s2, 0.1, 0.1).to_array()
    )
    scale = np.abs(lhs).max() + 1.0
    assert np.allclose(lhs, rhs, atol=1e-9 * scale)


@given(st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_rk4_step_is_linear_in_state(seed):
    """Linear RHS + linear integrator => linear step map."""
    eq = LinearizedEuler()
    s1 = random_state(seed)
    s2 = random_state(seed + 7)
    rhs = lambda s: eq.rhs(s, 0.1, 0.1)  # noqa: E731
    dt = 1e-3
    stepped_sum = rk4_step(s1 + s2, rhs, dt).to_array()
    sum_stepped = (rk4_step(s1, rhs, dt) + rk4_step(s2, rhs, dt)).to_array()
    scale = np.abs(stepped_sum).max() + 1.0
    assert np.allclose(stepped_sum, sum_stepped, atol=1e-9 * scale)


@given(st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_boundary_conditions_idempotent(seed):
    """Applying a BC twice must equal applying it once."""
    for bc in (apply_outflow, apply_periodic):
        state = random_state(seed)
        once = bc(state.copy())
        twice = bc(once.copy())
        assert np.allclose(once.to_array(), twice.to_array())


@given(st.floats(0.1, 2.0), st.floats(0.05, 0.5))
@settings(max_examples=30, deadline=None)
def test_pulse_scales_linearly_with_amplitude(amplitude, half_width):
    grid = UniformGrid2D.square(17)
    one = gaussian_pulse(grid, amplitude=1.0, half_width=half_width, isentropic=False)
    scaled = gaussian_pulse(grid, amplitude=amplitude, half_width=half_width, isentropic=False)
    assert np.allclose(scaled.p, amplitude * one.p)


@given(st.floats(0.5, 4.0), st.floats(0.5, 4.0), st.floats(1.1, 2.0))
@settings(max_examples=40, deadline=None)
def test_sound_speed_formula(p_c, rho_c, gamma):
    bg = Background(p_c=p_c, rho_c=rho_c, gamma=gamma)
    assert np.isclose(bg.sound_speed, np.sqrt(gamma * p_c / rho_c))


@given(st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_energy_is_norm_like(seed):
    """Acoustic energy is positive-definite and quadratic."""
    eq = LinearizedEuler()
    state = random_state(seed)
    energy = eq.acoustic_energy(state, 0.1, 0.1)
    assert energy > 0.0
    doubled = eq.acoustic_energy(2.0 * state, 0.1, 0.1)
    assert np.isclose(doubled, 4.0 * energy)

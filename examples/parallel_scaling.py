#!/usr/bin/env python3
"""Strong-scaling study (the paper's Fig. 4), 1 to 64 ranks.

Measures the wall time of the communication-free training phase for
each rank count and prints the scaling table plus an ASCII bar chart.

Run:  python examples/parallel_scaling.py [--max-ranks 64] [--epochs 2]
"""

import argparse
import sys

from repro.experiments import (
    DataConfig,
    Fig4Config,
    default_training_config,
    run_fig4,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-ranks", type=int, default=64)
    parser.add_argument("--grid-size", type=int, default=64)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--snapshots", type=int, default=25)
    args = parser.parse_args()

    rank_counts = [p for p in (1, 2, 4, 8, 16, 32, 64) if p <= args.max_ranks]
    config = Fig4Config(
        data=DataConfig(
            grid_size=args.grid_size,
            num_snapshots=args.snapshots,
            num_train=args.snapshots - 5,
        ),
        training=default_training_config(epochs=args.epochs),
        rank_counts=tuple(rank_counts),
        repeats=2,
    )
    print(
        f"Measuring training time on {args.grid_size}^2 grid for "
        f"P in {rank_counts} (each rank trains on 1/P of the domain; "
        "no communication during training)..."
    )
    result = run_fig4(config)
    print()
    print(result.report())
    print()
    last = result.rows[-1]
    print(
        f"speedup at P={last.num_ranks}: {last.speedup:.1f}x "
        f"(efficiency {last.efficiency:.2f}; >1 reflects cache effects "
        "on the smaller per-rank blocks)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

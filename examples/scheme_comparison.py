#!/usr/bin/env python3
"""Parallelization-scheme shoot-out: the paper's subdomain scheme vs.
sequential training vs. Viviani-style weight averaging (Sec. I).

Under an equal epoch budget, reports validation error, training wall
time and communication volume for each scheme — the quantitative
version of the paper's argument that weight averaging "alters the
learning algorithm" and makes "global reduction operations potential
performance bottlenecks".

Run:  python examples/scheme_comparison.py [--ranks 4] [--epochs 10]
"""

import argparse
import sys

from repro.experiments import DataConfig, run_scheme_comparison


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--epochs", type=int, default=10)
    args = parser.parse_args()

    print(
        f"Comparing schemes at P={args.ranks} with {args.epochs} epochs each..."
    )
    result = run_scheme_comparison(
        data=DataConfig(grid_size=48, num_snapshots=60, num_train=48),
        epochs=args.epochs,
        num_ranks=args.ranks,
    )
    print()
    print(result.report())
    print()
    sub = next(r for r in result.rows if "subdomain" in r.scheme)
    seq = next(r for r in result.rows if "sequential" in r.scheme)
    wa = next(r for r in result.rows if "averaging" in r.scheme)
    print(
        f"subdomain scheme: {seq.train_time / sub.train_time:.1f}x faster "
        f"than sequential, 0 bytes communicated"
    )
    print(
        f"weight averaging: {wa.bytes_communicated / 1024:.0f} KiB of "
        "allreduce traffic for its epoch-wise synchronization"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Multi-step rollout: autoregressive surrogate prediction with
point-to-point halo exchange (Sec. III "Inference" + the Sec. IV-B
error-accumulation discussion).

Trains the parallel surrogate, rolls it out for several steps feeding
each prediction back as the next input, and prints how the error grows
— the behaviour the paper attributes to the missing temporal context
of pure-CNN models.

Run:  python examples/rollout_prediction.py [--steps 10]
"""

import argparse
import sys

from repro.experiments import (
    DataConfig,
    default_training_config,
    run_rollout_study,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=10)
    parser.add_argument("--epochs", type=int, default=30)
    parser.add_argument("--ranks", type=int, default=4)
    args = parser.parse_args()

    print(
        f"Training {args.ranks} subdomain networks, then rolling out "
        f"{args.steps} steps with halo exchange each step..."
    )
    result = run_rollout_study(
        data=DataConfig(grid_size=48, num_snapshots=80, num_train=60),
        training=default_training_config(epochs=args.epochs),
        num_ranks=args.ranks,
        num_steps=args.steps,
    )
    print()
    print(result.report())
    print()
    growth = result.errors[-1] / result.errors[0]
    print(
        f"error grew {growth:.1f}x from step 1 to step {args.steps} — "
        "single-step training cannot capture temporal connectivity "
        "(the paper proposes recurrent/LSTM layers as future work)"
    )
    print(
        f"communication: {result.messages_sent} point-to-point halo "
        f"messages, {result.bytes_sent / 1024:.1f} KiB total"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

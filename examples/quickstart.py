#!/usr/bin/env python3
"""Quickstart: the whole pipeline in ~40 lines.

Generates a small linearized-Euler dataset, trains four subdomain
networks in parallel (communication-free), and predicts one time step
with point-to-point halo exchange.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import core, data
from repro.core import CNNConfig, PaddingStrategy, TrainingConfig
from repro.experiments import ascii_heatmap, side_by_side

# 1. Data: a Gaussian pressure pulse simulated by the built-in solver
#    (the paper's Sec. IV-A setup, scaled down from 256^2 to 48^2).
produced = data.generate_paper_dataset(grid_size=48, num_snapshots=80, num_train=60)
train, validation = produced.train, produced.validation
print(f"train pairs: {train.num_samples}, validation pairs: {validation.num_samples}")

# Standardize the four channels (p, rho, u, v) on training statistics.
normalizer = data.StandardNormalizer().fit(train.snapshots)
train_n = data.SnapshotDataset(normalizer.transform(train.snapshots))
val_n = data.SnapshotDataset(normalizer.transform(validation.snapshots))

# 2. Parallel training: Table-I CNN per subdomain, 4 ranks, no
#    communication during training (the paper's core idea).
trainer = core.ParallelTrainer(
    cnn_config=CNNConfig(strategy=PaddingStrategy.NEIGHBOR_FIRST),
    training_config=TrainingConfig(epochs=15, batch_size=16, lr=0.002, loss="mse"),
    num_ranks=4,
)
result = trainer.train(train_n, execution="threads")
print(f"per-rank final losses: {[f'{l:.4f}' for l in result.final_losses]}")
print(f"slowest rank trained in {result.max_train_time:.2f}s")

# 3. Parallel inference: one step with halo exchange between ranks.
predictor = core.ParallelPredictor(result.build_models(), result.decomposition)
model_input, target_n = val_n[0]
rollout = predictor.rollout(model_input, num_steps=1)
prediction = normalizer.inverse_transform(rollout.trajectory[1])
target = normalizer.inverse_transform(target_n)

errors = core.per_channel(core.relative_l2, prediction, target)
print("per-channel relative L2 error:", {k: f"{v:.3f}" for k, v in errors.items()})
print(f"halo messages: {rollout.messages_sent}, bytes: {rollout.bytes_sent}")

print("\npressure field, prediction vs target:")
print(
    side_by_side(
        ascii_heatmap(prediction[0], width=40, height=16),
        ascii_heatmap(target[0], width=40, height=16),
        labels=("prediction", "target"),
    )
)

#!/usr/bin/env python3
"""Using the library beyond the paper: learning a *different* PDE.

The paper's scheme is PDE-agnostic — any time-dependent field data can
be decomposed spatially.  Here we build a custom dataset (background
advection of a density blob, i.e. the linearized Euler equations with a
non-zero background velocity), train the parallel surrogate on it, and
verify the surrogate moves the blob the right way.

This demonstrates the extension points of the library:
- custom :class:`~repro.solver.Background` (moving base flow),
- custom initial conditions,
- custom CNN configuration (3x3 kernels, different channel widths).

Run:  python examples/custom_pde_advection.py
"""

import sys

import numpy as np

from repro import core, data, solver
from repro.core import CNNConfig, PaddingStrategy, TrainingConfig


def main() -> int:
    # --- custom physics: uniform background wind along +x ------------
    background = solver.Background(u_c=0.6, v_c=0.0)
    grid = solver.UniformGrid2D.square(48)
    equations = solver.LinearizedEuler(background)
    sim = solver.Simulation(grid, equations, boundary="outflow", cfl=0.4)

    initial = solver.gaussian_pulse(
        grid, amplitude=0.3, half_width=0.25, center=(-0.4, 0.0),
        background=background, isentropic=True,
    )
    print(f"background wind u_c={background.u_c}, sound speed c={background.sound_speed:.2f}")
    result = sim.run(initial, num_snapshots=120, steps_per_snapshot=1)
    dataset = data.SnapshotDataset(result.snapshots)
    train, validation = dataset.split(90)

    normalizer = data.StandardNormalizer().fit(train.snapshots)
    train_n = data.SnapshotDataset(normalizer.transform(train.snapshots))
    val_n = data.SnapshotDataset(normalizer.transform(validation.snapshots))

    # --- custom architecture: narrower/faster than Table I -----------
    cnn = CNNConfig(
        channels=(4, 8, 8, 4),
        kernel_size=3,
        strategy=PaddingStrategy.NEIGHBOR_ALL,  # exact interface handling
    )
    trainer = core.ParallelTrainer(
        cnn_config=cnn,
        training_config=TrainingConfig(epochs=25, batch_size=16, lr=0.002, loss="mse"),
        num_ranks=4,
    )
    trained = trainer.train(train_n, execution="threads")
    print(f"trained 4 custom networks; losses {[f'{l:.4f}' for l in trained.final_losses]}")

    # --- verify the surrogate advects the blob downstream ------------
    predictor = core.ParallelPredictor(trained.build_models(), trained.decomposition)
    start_n = val_n.snapshots[0]
    steps = 5
    rollout = predictor.rollout(start_n, num_steps=steps)
    prediction = normalizer.inverse_transform(rollout.trajectory[steps])
    truth = normalizer.inverse_transform(val_n.snapshots[steps])

    error = core.relative_l2(prediction, truth)
    print(f"relative L2 error after {steps} surrogate steps: {error:.3f}")

    def centroid_x(field: np.ndarray) -> float:
        weights = np.abs(field[1])  # density channel
        X, _ = grid.meshgrid()
        return float((X * weights).sum() / weights.sum())

    start_raw = normalizer.inverse_transform(start_n)
    moved_pred = centroid_x(prediction) - centroid_x(start_raw)
    moved_true = centroid_x(truth) - centroid_x(start_raw)
    print(
        f"density centroid drift over {steps} steps: "
        f"surrogate {moved_pred:+.4f} m vs solver {moved_true:+.4f} m"
    )
    if moved_true != 0 and np.sign(moved_pred) == np.sign(moved_true):
        print("surrogate advects the blob in the correct (downwind) direction")
    return 0


if __name__ == "__main__":
    sys.exit(main())

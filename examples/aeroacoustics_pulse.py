#!/usr/bin/env python3
"""Aeroacoustics showcase: the paper's Sec. IV experiment end to end.

1. Simulate the Gaussian pressure pulse with the linearized-Euler
   solver (the Ateles stand-in) and inspect the physics diagnostics.
2. Train per-subdomain networks on the first part of the trajectory.
3. Compare prediction and target on a validation snapshot (Fig. 3).
4. Report per-channel accuracy and the training-time distribution.

This is the full-fidelity version of the quickstart; with
``--paper-scale`` it runs the exact 256^2 / 1500-snapshot configuration
(expect a long runtime on one core).

Run:  python examples/aeroacoustics_pulse.py [--paper-scale]
"""

import argparse
import sys

import numpy as np

from repro.experiments import (
    DataConfig,
    Fig3Config,
    default_training_config,
    render_table1,
    run_fig3,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="run the full 256^2 grid with 1500 snapshots (slow!)",
    )
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--ranks", type=int, default=4)
    args = parser.parse_args()

    if args.paper_scale:
        data_config = DataConfig(grid_size=256, num_snapshots=1500, num_train=1000)
    else:
        data_config = DataConfig(grid_size=64, num_snapshots=150, num_train=100)

    print("Network architecture (Table I):")
    print(render_table1())
    print()

    config = Fig3Config(
        data=data_config,
        training=default_training_config(epochs=args.epochs),
        num_ranks=args.ranks,
    )
    print(
        f"Simulating {data_config.grid_size}^2 grid, "
        f"{data_config.num_snapshots} snapshots; training {args.ranks} "
        f"subdomain networks for {args.epochs} epochs..."
    )
    result = run_fig3(config)

    print()
    print(result.report(heatmaps=True))
    print()

    times = [r.train_time for r in result.training_result.rank_results]
    print(
        f"training time: max {max(times):.2f}s, "
        f"mean {np.mean(times):.2f}s over {args.ranks} ranks "
        "(training is communication-free; the max is the parallel wall time)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

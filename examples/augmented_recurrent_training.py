#!/usr/bin/env python3
"""Extensions tour: D4 data augmentation + the parallel ConvLSTM
surrogate (the paper's Sec. IV-B future work, per subdomain).

1. Simulate an *asymmetric* pulse (off-centre) so the D4 orbit is
   genuinely new data.
2. Augment the training trajectory with the 8 square symmetries —
   physically exact for the linearized Euler equations (the test suite
   proves solver equivariance to machine precision).
3. Train per-subdomain ConvLSTM surrogates, communication-free, and
   roll them out on held-out data.

Run:  python examples/augmented_recurrent_training.py
"""

import sys

import numpy as np

from repro import core, data, solver
from repro.core import TrainingConfig, train_parallel_recurrent


def main() -> int:
    # --- asymmetric trajectory ----------------------------------------
    grid = solver.UniformGrid2D.square(32)
    sim = solver.Simulation(grid, solver.LinearizedEuler(), boundary="outflow", cfl=0.5)
    initial = solver.gaussian_pulse(
        grid, amplitude=0.5, half_width=0.25, center=(0.35, -0.2), isentropic=False
    )
    result = sim.run(initial, num_snapshots=60)
    dataset = data.SnapshotDataset(result.snapshots)
    train, validation = dataset.split(45)

    normalizer = data.StandardNormalizer().fit(train.snapshots)
    train_n = data.SnapshotDataset(normalizer.transform(train.snapshots))
    val_n = data.SnapshotDataset(normalizer.transform(validation.snapshots))

    # --- D4 augmentation (8x the training data, zero simulation cost) --
    augmented = data.augment_dataset(train_n)
    print(
        f"training snapshots: {train_n.snapshots.shape[0]} -> "
        f"{augmented.snapshots.shape[0]} after D4 augmentation"
    )

    # --- parallel ConvLSTM training (communication-free) ---------------
    window = 3
    trained = train_parallel_recurrent(
        augmented,
        num_ranks=4,
        window=window,
        hidden_channels=8,
        kernel_size=3,
        training_config=TrainingConfig(epochs=4, batch_size=16, lr=0.005, loss="mse"),
        execution="threads",
    )
    print(
        f"trained 4 ConvLSTM surrogates in {trained.max_train_time:.1f}s "
        "(slowest rank)"
    )

    # --- rollout on held-out data --------------------------------------
    steps = 4
    rollout_n = trained.rollout(val_n.snapshots[:window], num_steps=steps)
    for step in range(1, steps + 1):
        prediction = normalizer.inverse_transform(rollout_n[step - 1])
        target = normalizer.inverse_transform(val_n.snapshots[window - 1 + step])
        error = core.relative_l2(prediction, target)
        print(f"  rollout step {step}: relative L2 = {error:.3f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

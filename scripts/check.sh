#!/usr/bin/env bash
# One-shot static-analysis gate: ruff + mypy (when installed) +
# repro lint + repro analyze.
# Run from the repo root:  bash scripts/check.sh   (or: make lint)
set -u

cd "$(dirname "$0")/.."
export PYTHONPATH=src
status=0

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check src/repro tests =="
    ruff check src/repro tests || status=1
else
    echo "== ruff: not installed, skipping =="
fi

if python -c "import mypy" >/dev/null 2>&1; then
    echo "== mypy --strict src/repro/tensor =="
    python -m mypy --strict src/repro/tensor || status=1
else
    echo "== mypy: not installed, skipping =="
fi

echo "== repro lint src/repro =="
python -m repro.cli lint src/repro --no-baseline || status=1

echo "== repro analyze src/repro =="
python -m repro.cli analyze src/repro || status=1

if [ "$status" -eq 0 ]; then
    echo "check.sh: all passes clean"
else
    echo "check.sh: FAILURES above"
fi
exit "$status"

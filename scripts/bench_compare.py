#!/usr/bin/env python3
"""Diff fresh BENCH_<module>.json results against committed baselines.

Usage::

    python scripts/bench_compare.py \
        --baseline benchmarks/results/BENCH_kernels.json \
        --current  /tmp/fresh/BENCH_kernels.json \
        --tolerance 1.5

Each record is matched by its ``op`` name and compared on
``median_seconds``.  An op is a **regression** when
``current > baseline * tolerance``; ops only present on one side are
reported but never fail the run (benchmarks come and go).  Exit status
is 1 when any regression is found, 0 otherwise — CI wires this in as a
*soft* gate (``continue-on-error``), because shared runners make
wall-clock a noisy signal; the report is the artifact, the exit code is
the hint.

The default tolerance is deliberately loose (1.5x): this gate exists to
catch "the fused path silently fell back to the naive one" (2-3x), not
5% drift.

``--require-order`` (repeatable) adds a **hard** gate on the ordering
of two ops, in one of two forms::

    python scripts/bench_compare.py \
        --baseline benchmarks/results/BENCH_kernels.json \
        --current  /tmp/fresh/BENCH_kernels.json \
        --require-order test_conv2d_forward_fused_256:test_conv2d_forward_256 \
        --require-order 'test_conv2d_forward_float32_256<=test_conv2d_forward_256'

The **relative** form ``A:B`` fails when ``current_A / current_B``
exceeds ``(baseline_A / baseline_B) * --order-tolerance`` — i.e. A got
slower *relative to B* by more than the margin, regardless of how
noisy the runner's absolute wall-clock is.  Comparing ratios against
the baseline's own ratio (rather than asserting ``A < B`` outright)
makes the gate meaningful even for pairs the baseline records as a tie
or a loss, and self-ratios cancel most machine-speed noise.

The **absolute** form ``A<=B`` fails when the *current* run alone has
``current_A > current_B * --order-slack``: use it for orderings that
must hold outright on every machine — the fused conv must not lose to
the plain composed-op path doing the same work, float32 must not lose
to float64.  The slack (default 1.05) absorbs run-to-run jitter
between two separately-measured medians, nothing more; a genuine
inversion (the failure modes these gates exist for: the fused epilogue
regressing to a masked multiply, a float32 graph silently computing in
float64) overshoots it several times over.  The baseline file is not
consulted for absolute pairs.

Both forms are hard where the per-op gate is soft: ordering violations
exit with status 2 (per-op regressions alone exit 1), and CI treats
only exit 2 as fatal.  An op named in ``--require-order`` but missing
from a consulted file is itself a hard failure — an ordering gate that
silently stops measuring is worse than one that fails.

A second, independent mode diffs the per-rank communication fraction of
two ``repro trace`` summary files (the ``<out>.summary.json`` written
next to every chrome trace)::

    python scripts/bench_compare.py \
        --summary-baseline baseline.summary.json \
        --summary-current  fresh.summary.json \
        --comm-tolerance 0.10

A rank is a regression when its current ``comm_fraction`` exceeds the
baseline's by more than ``--comm-tolerance`` *absolute* points (0.10 =
ten percentage points).  Fractions are compared absolutely rather than
as ratios because a 0.01 -> 0.03 jump is noise while 0.30 -> 0.45 is a
real shift in the compute/communication balance.  Both modes can run in
one invocation; exit status is 1 when either finds a regression.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load_records(path: pathlib.Path) -> dict[str, dict]:
    try:
        records = json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"bench_compare: no such file: {path}")
    except json.JSONDecodeError as exc:
        sys.exit(f"bench_compare: {path} is not valid JSON: {exc}")
    return {record["op"]: record for record in records}


def compare(
    baseline: dict[str, dict], current: dict[str, dict], tolerance: float
) -> tuple[list[str], int]:
    """Render a comparison table; returns (lines, regression_count)."""
    lines = [f"{'op':<40} {'baseline':>12} {'current':>12} {'ratio':>8}  verdict"]
    regressions = 0
    for op in sorted(set(baseline) | set(current)):
        base = baseline.get(op)
        cur = current.get(op)
        if base is None:
            lines.append(f"{op:<40} {'-':>12} {cur['median_seconds']:>12.5f} {'-':>8}  new (no baseline)")
            continue
        if cur is None:
            lines.append(f"{op:<40} {base['median_seconds']:>12.5f} {'-':>12} {'-':>8}  missing from current run")
            continue
        base_s = float(base["median_seconds"])
        cur_s = float(cur["median_seconds"])
        ratio = cur_s / base_s if base_s > 0 else float("inf")
        if ratio > tolerance:
            verdict = f"REGRESSION (> {tolerance:.2f}x)"
            regressions += 1
        elif ratio < 1.0 / tolerance:
            verdict = "improved"
        else:
            verdict = "ok"
        lines.append(f"{op:<40} {base_s:>12.5f} {cur_s:>12.5f} {ratio:>7.2f}x  {verdict}")
    return lines, regressions


def parse_order_pairs(raw: list[str]) -> list[tuple[str, str, str]]:
    """Parse ``A:B`` (relative) / ``A<=B`` (absolute) into
    ``(op_a, op_b, mode)`` triples."""
    pairs = []
    for item in raw:
        if "<=" in item:
            parts, mode = item.split("<="), "absolute"
        else:
            parts, mode = item.split(":"), "relative"
        if len(parts) != 2 or not all(parts):
            sys.exit(
                "bench_compare: --require-order expects 'opA:opB' or "
                f"'opA<=opB', got {item!r}"
            )
        pairs.append((parts[0], parts[1], mode))
    return pairs


def compare_order(
    baseline: dict[str, dict],
    current: dict[str, dict],
    pairs: list[tuple[str, str, str]],
    tolerance: float,
    slack: float = 1.05,
) -> tuple[list[str], int]:
    """Hard ordering gates; returns (lines, violation_count).

    Relative (``A:B``) pairs compare the current A/B median ratio
    against the baseline's own ratio times ``tolerance``.  Absolute
    (``A<=B``) pairs assert ``current_A <= current_B * slack`` with no
    baseline involved.  Violations cover a deteriorated/inverted
    ordering and a pair op missing from a consulted file.
    """
    lines = [
        f"{'ordering pair':<60} {'base A/B':>9} {'cur A/B':>9}  verdict"
    ]
    violations = 0
    for op_a, op_b, mode in pairs:
        relative = mode == "relative"
        label = f"{op_a} {':' if relative else '<='} {op_b}"
        sides = (("baseline", baseline), ("current", current)) if relative \
            else (("current", current),)
        missing = [
            f"{op} ({side})"
            for side, records in sides
            for op in (op_a, op_b)
            if op not in records
        ]
        if missing:
            lines.append(f"{label:<60} {'-':>9} {'-':>9}  VIOLATION (missing: {', '.join(missing)})")
            violations += 1
            continue
        cur_a = float(current[op_a]["median_seconds"])
        cur_b = float(current[op_b]["median_seconds"])
        if cur_b <= 0 or (relative and float(baseline[op_b]["median_seconds"]) <= 0):
            lines.append(f"{label:<60} {'-':>9} {'-':>9}  VIOLATION (non-positive timing)")
            violations += 1
            continue
        cur_ratio = cur_a / cur_b
        if relative:
            base_ratio = (
                float(baseline[op_a]["median_seconds"])
                / float(baseline[op_b]["median_seconds"])
            )
            base_text = f"{base_ratio:>9.3f}"
            bound = base_ratio * tolerance
            verdict_text = f"VIOLATION (> {tolerance:.2f}x baseline ratio)"
        else:
            base_text = f"{'-':>9}"
            bound = slack
            verdict_text = f"VIOLATION (A > B * {slack:.2f} slack)"
        if cur_ratio > bound:
            verdict = verdict_text
            violations += 1
        else:
            verdict = "ok"
        lines.append(f"{label:<60} {base_text} {cur_ratio:>9.3f}  {verdict}")
    return lines, violations


def load_summary(path: pathlib.Path) -> dict[str, dict]:
    try:
        summary = json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"bench_compare: no such file: {path}")
    except json.JSONDecodeError as exc:
        sys.exit(f"bench_compare: {path} is not valid JSON: {exc}")
    if not isinstance(summary, dict):
        sys.exit(f"bench_compare: {path} is not a trace summary (expected an object)")
    return summary


def compare_comm(
    baseline: dict[str, dict], current: dict[str, dict], tolerance: float
) -> tuple[list[str], int]:
    """Diff per-rank comm_fraction; returns (lines, regression_count).

    ``tolerance`` is an *absolute* delta in fraction points.  Ranks
    present on only one side are reported but never fail the run
    (rank counts legitimately change between scaling configurations).
    """
    lines = [f"{'rank':<8} {'base comm%':>11} {'cur comm%':>11} {'delta':>8}  verdict"]
    regressions = 0
    for rank in sorted(set(baseline) | set(current), key=lambda r: (r == "driver", r)):
        base = baseline.get(rank)
        cur = current.get(rank)
        if base is None:
            lines.append(f"{rank:<8} {'-':>11} {100 * cur['comm_fraction']:>10.1f}% {'-':>8}  new (no baseline)")
            continue
        if cur is None:
            lines.append(f"{rank:<8} {100 * base['comm_fraction']:>10.1f}% {'-':>11} {'-':>8}  missing from current run")
            continue
        base_f = float(base["comm_fraction"])
        cur_f = float(cur["comm_fraction"])
        delta = cur_f - base_f
        if delta > tolerance:
            verdict = f"REGRESSION (> +{100 * tolerance:.0f} pts)"
            regressions += 1
        elif delta < -tolerance:
            verdict = "improved"
        else:
            verdict = "ok"
        lines.append(
            f"{rank:<8} {100 * base_f:>10.1f}% {100 * cur_f:>10.1f}% "
            f"{100 * delta:>+7.1f}p  {verdict}"
        )
    return lines, regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=pathlib.Path,
                        help="committed BENCH_<module>.json")
    parser.add_argument("--current", type=pathlib.Path,
                        help="freshly generated BENCH_<module>.json")
    parser.add_argument("--tolerance", type=float, default=1.5,
                        help="fail when current > baseline * tolerance "
                        "(default: %(default)s)")
    parser.add_argument("--require-order", action="append", default=[],
                        metavar="OPA:OPB|OPA<=OPB",
                        help="hard ordering gate (repeatable; violations exit "
                        "2): 'A:B' gates the current A/B median ratio against "
                        "the baseline's own ratio; 'A<=B' asserts A <= "
                        "B * --order-slack in the current run alone")
    parser.add_argument("--order-tolerance", type=float, default=1.25,
                        help="fail a relative (A:B) pair when its current "
                        "ratio exceeds baseline ratio * this factor "
                        "(default: %(default)s)")
    parser.add_argument("--order-slack", type=float, default=1.05,
                        help="jitter headroom for absolute (A<=B) pairs: fail "
                        "when current A > current B * this factor "
                        "(default: %(default)s)")
    parser.add_argument("--summary-baseline", type=pathlib.Path,
                        help="baseline repro-trace <out>.summary.json")
    parser.add_argument("--summary-current", type=pathlib.Path,
                        help="fresh repro-trace <out>.summary.json")
    parser.add_argument("--comm-tolerance", type=float, default=0.10,
                        help="fail when a rank's comm_fraction grows by more "
                        "than this absolute delta (default: %(default)s)")
    args = parser.parse_args(argv)
    if args.tolerance <= 1.0:
        parser.error(f"--tolerance must be > 1.0, got {args.tolerance}")
    if args.order_tolerance <= 1.0:
        parser.error(f"--order-tolerance must be > 1.0, got {args.order_tolerance}")
    if args.order_slack < 1.0:
        parser.error(f"--order-slack must be >= 1.0, got {args.order_slack}")
    if args.require_order and not args.baseline:
        parser.error("--require-order needs --baseline/--current")
    if not 0.0 < args.comm_tolerance < 1.0:
        parser.error(f"--comm-tolerance must be in (0, 1), got {args.comm_tolerance}")
    if bool(args.baseline) != bool(args.current):
        parser.error("--baseline and --current must be given together")
    if bool(args.summary_baseline) != bool(args.summary_current):
        parser.error("--summary-baseline and --summary-current must be given together")
    if not args.baseline and not args.summary_baseline:
        parser.error("nothing to compare: give --baseline/--current and/or "
                     "--summary-baseline/--summary-current")

    regressions = 0
    violations = 0
    if args.baseline:
        baseline = load_records(args.baseline)
        current = load_records(args.current)
        lines, bench_regressions = compare(baseline, current, args.tolerance)
        print("\n".join(lines))
        if bench_regressions:
            print(f"\n{bench_regressions} regression(s) beyond "
                  f"{args.tolerance:.2f}x tolerance")
        regressions += bench_regressions
        if args.require_order:
            pairs = parse_order_pairs(args.require_order)
            print()
            lines, violations = compare_order(
                baseline, current, pairs, args.order_tolerance,
                slack=args.order_slack,
            )
            print("\n".join(lines))
            if violations:
                print(f"\n{violations} ordering violation(s)")
    if args.summary_baseline:
        if args.baseline:
            print()
        base_summary = load_summary(args.summary_baseline)
        cur_summary = load_summary(args.summary_current)
        lines, comm_regressions = compare_comm(
            base_summary, cur_summary, args.comm_tolerance
        )
        print("\n".join(lines))
        if comm_regressions:
            print(f"\n{comm_regressions} rank(s) with comm_fraction up more "
                  f"than {100 * args.comm_tolerance:.0f} points")
        regressions += comm_regressions
    if violations:
        return 2
    if regressions:
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Diff fresh BENCH_<module>.json results against committed baselines.

Usage::

    python scripts/bench_compare.py \
        --baseline benchmarks/results/BENCH_kernels.json \
        --current  /tmp/fresh/BENCH_kernels.json \
        --tolerance 1.5

Each record is matched by its ``op`` name and compared on
``median_seconds``.  An op is a **regression** when
``current > baseline * tolerance``; ops only present on one side are
reported but never fail the run (benchmarks come and go).  Exit status
is 1 when any regression is found, 0 otherwise — CI wires this in as a
*soft* gate (``continue-on-error``), because shared runners make
wall-clock a noisy signal; the report is the artifact, the exit code is
the hint.

The default tolerance is deliberately loose (1.5x): this gate exists to
catch "the fused path silently fell back to the naive one" (2-3x), not
5% drift.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load_records(path: pathlib.Path) -> dict[str, dict]:
    try:
        records = json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"bench_compare: no such file: {path}")
    except json.JSONDecodeError as exc:
        sys.exit(f"bench_compare: {path} is not valid JSON: {exc}")
    return {record["op"]: record for record in records}


def compare(
    baseline: dict[str, dict], current: dict[str, dict], tolerance: float
) -> tuple[list[str], int]:
    """Render a comparison table; returns (lines, regression_count)."""
    lines = [f"{'op':<40} {'baseline':>12} {'current':>12} {'ratio':>8}  verdict"]
    regressions = 0
    for op in sorted(set(baseline) | set(current)):
        base = baseline.get(op)
        cur = current.get(op)
        if base is None:
            lines.append(f"{op:<40} {'-':>12} {cur['median_seconds']:>12.5f} {'-':>8}  new (no baseline)")
            continue
        if cur is None:
            lines.append(f"{op:<40} {base['median_seconds']:>12.5f} {'-':>12} {'-':>8}  missing from current run")
            continue
        base_s = float(base["median_seconds"])
        cur_s = float(cur["median_seconds"])
        ratio = cur_s / base_s if base_s > 0 else float("inf")
        if ratio > tolerance:
            verdict = f"REGRESSION (> {tolerance:.2f}x)"
            regressions += 1
        elif ratio < 1.0 / tolerance:
            verdict = "improved"
        else:
            verdict = "ok"
        lines.append(f"{op:<40} {base_s:>12.5f} {cur_s:>12.5f} {ratio:>7.2f}x  {verdict}")
    return lines, regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=pathlib.Path,
                        help="committed BENCH_<module>.json")
    parser.add_argument("--current", required=True, type=pathlib.Path,
                        help="freshly generated BENCH_<module>.json")
    parser.add_argument("--tolerance", type=float, default=1.5,
                        help="fail when current > baseline * tolerance "
                        "(default: %(default)s)")
    args = parser.parse_args(argv)
    if args.tolerance <= 1.0:
        parser.error(f"--tolerance must be > 1.0, got {args.tolerance}")

    baseline = load_records(args.baseline)
    current = load_records(args.current)
    lines, regressions = compare(baseline, current, args.tolerance)
    print("\n".join(lines))
    if regressions:
        print(f"\n{regressions} regression(s) beyond {args.tolerance:.2f}x tolerance")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())

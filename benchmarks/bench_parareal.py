"""Parallel-in-time: Parareal with the CNN as coarse propagator.

Measures iterations-to-converge and wall-clock speedup of the Parareal
driver against serial fine stepping as a function of slice count, on
both benchmark scenarios and both compute precisions for the coarse
model.  The rollout horizon is pinned to ``TOTAL_COARSE`` CNN
applications for *every* op — 4 slices run ``coarse_steps=2`` per
slice, 8 slices run 1 — so ``test_serial_fine_<scenario>`` covers the
same physical problem (and the same number of fine solver steps) as
every parareal variant, and medians are directly comparable within one
run.

The two scenarios probe the two regimes the parallel-in-time
literature predicts:

- **allen-cahn** (diffusive, bistable): the benchmark starts from a
  *developed* (saturated) state, where the long-horizon coarse map is
  slow interface motion — a regime the small CNN learns to ~3 %
  relative L2 from a single trajectory.  The iteration genuinely
  converges (tolerance ``AC_TOLERANCE``) in one correction sweep, and
  the recorded error against serial fine is ~1-2 %.  This is the
  convergence-based speedup case.
- **euler-gaussian** (hyperbolic): waves cross the domain faster than
  any local CNN's receptive field can track across a long coarse step,
  so the surrogate does not contract the iteration — Parareal's known
  weakness on advection-dominated dynamics.  These ops run a *fixed*
  two-sweep budget (standard fixed-K Parareal reporting) with
  ``converged=False`` and the error against serial fine recorded
  honestly in ``extra_info``; their work is deterministic, so the
  wall-clock ordering against serial fine still holds by cost
  construction.

Portability of the recorded numbers:

- **Convergence/iteration fields** (asserted always): sweep counts,
  deltas, and final states are bitwise identical across backends and
  core counts.
- **Wall-clock** (asserted at >= 4 schedulable cores only): with one
  core the parallel fine sweeps serialize and Parareal degenerates to
  (K+1) times the serial work, so ``speedup_vs_serial_fine`` < 1 in a
  1-core baseline — the recorded ``cores`` field tells a diff whether
  the wall columns are comparable.  CI applies the hard
  ``parareal <= serial fine`` ordering gate on its own >= 4-core
  measurement (the ``parareal`` job).

The coarse model is trained in-module (cached per scenario, once, at
the rollout grid) and the float32 twin is materialized through the
checkpoint precision machinery rather than an ad-hoc cast.
"""

import tempfile
import time

import numpy as np

from conftest import available_cores, run_once

from repro.core import (
    ParallelTrainer,
    TrainingConfig,
    load_parallel_models,
    save_parallel_models,
)
from repro.data import SnapshotDataset, generate_scenario_dataset
from repro.scenarios import (
    build_grid,
    build_simulation,
    channels,
    cnn_config,
    get_scenario,
    parareal_config,
)
from repro.solver.parareal import ModelCoarseOperator, PararealDriver, serial_fine

#: Rollout grid for every op (training runs at the same grid: the
#: coarse map is resolution-specific, a surrogate trained at another
#: grid does not transfer).
GRID = 64

#: CNN applications across the whole horizon, shared by every op.
TOTAL_COARSE = 8

#: Fine steps one coarse application stands in for — the G/F cost
#: ratio knob.  Large on purpose: the fine propagator is
#: stability-limited to small steps while the surrogate jumps the
#: whole span in one forward pass, which is exactly where
#: parallel-in-time pays (8·G/T ~ 0.02 at these settings).
FINE_STEPS_PER_COARSE = {"euler-gaussian": 400, "allen-cahn": 2000}

#: Convergence threshold (relative L2 successive-iterate delta) for
#: the allen-cahn convergence ops.  Calibrated ~40 % above the
#: deterministic first-sweep delta (~0.05) so the run converges in one
#: correction sweep; the *actual* error vs serial fine at that point
#: (~1-2 %) is recorded per op.
AC_TOLERANCE = 8e-2

#: Fixed sweep budget for the euler (non-contracting) ops.
EULER_SWEEPS = 2

#: Coarse-model training budget.  Allen-cahn needs the accuracy (its
#: convergence depends on it); euler's surrogate cannot contract the
#: iteration regardless, so it gets a token budget.
TRAIN_SNAPSHOTS = 12
TRAIN_EPOCHS = {"euler-gaussian": 20, "allen-cahn": 80}

#: Coarse network: a slimmed-down paper CNN — a coarse propagator
#: should be cheap, and the hidden widths are a cost knob the paper's
#: Table I does not pin for this use.
COARSE_HIDDEN = (4, 8, 4)

EXECUTION = "processes"

_CACHE: dict = {}


def _setup(scenario: str, precision: str = "float64"):
    """Cached per-scenario context: simulation, start state, reference
    serial-fine states (+ its one-shot wall), and the trained coarse
    model at the requested precision."""
    base_key = ("base", scenario)
    if base_key not in _CACHE:
        spec = get_scenario(scenario)
        grid = build_grid(spec, GRID)
        simulation = build_simulation(spec, grid)
        f = FINE_STEPS_PER_COARSE[scenario]
        produced = generate_scenario_dataset(
            scenario,
            grid_size=GRID,
            num_snapshots=TRAIN_SNAPSHOTS,
            num_train=TRAIN_SNAPSHOTS - 2,
            steps_per_snapshot=f,
        )
        snaps = produced.full_snapshots
        # Allen-cahn: start from the developed (saturated) state so
        # every slice map sits in the regime the surrogate is good at;
        # the initial transient is a one-slice feature that would
        # otherwise dominate the iteration (see module docstring).
        start = snaps[1] if scenario == "allen-cahn" else snaps[0]
        epochs = TRAIN_EPOCHS[scenario]
        C = len(channels(spec))
        trainer = ParallelTrainer(
            cnn_config(scenario, channels=(C, *COARSE_HIDDEN, C)),
            TrainingConfig(
                epochs=epochs,
                batch_size=4,
                lr=0.01,
                loss="mse",
                seed=0,
                lr_schedule="cosine",
                lr_schedule_kwargs={"total_epochs": epochs},
            ),
            num_ranks=1,
            seed=0,
        )
        result = trainer.train(SnapshotDataset(snaps), execution="serial")
        # Reference trajectory at the finest slice resolution (s8);
        # coarser slice counts read every other boundary.
        config = _config(scenario, TOTAL_COARSE)
        t0 = time.perf_counter()
        reference = serial_fine(simulation, start, config)
        serial_wall = time.perf_counter() - t0
        _CACHE[base_key] = (simulation, start, result, reference, serial_wall)
    simulation, start, result, reference, serial_wall = _CACHE[base_key]

    key = ("model", scenario, precision)
    if key not in _CACHE:
        with tempfile.TemporaryDirectory() as tmp:
            path = f"{tmp}/coarse.npz"
            save_parallel_models(path, result, scenario=scenario, precision=precision)
            models, _, _ = load_parallel_models(path, precision=precision)
        _CACHE[key] = models[0]
    return simulation, start, _CACHE[key], reference, serial_wall


def _config(scenario: str, slices: int, max_iterations: int | None = None):
    if scenario == "euler-gaussian":
        tolerance, max_iterations = 1e-9, EULER_SWEEPS
    else:
        tolerance = AC_TOLERANCE
    return parareal_config(
        scenario,
        slices=slices,
        coarse_steps=TOTAL_COARSE // slices,
        fine_steps_per_coarse=FINE_STEPS_PER_COARSE[scenario],
        tolerance=tolerance,
        max_iterations=max_iterations,
    )


def _bench_serial_fine(benchmark, scenario: str):
    simulation, start, _, _, _ = _setup(scenario)
    config = _config(scenario, TOTAL_COARSE)
    states = run_once(benchmark, lambda: serial_fine(simulation, start, config))
    benchmark.extra_info["scenario"] = scenario
    benchmark.extra_info["precision"] = "float64"
    benchmark.extra_info["grid"] = GRID
    benchmark.extra_info["fine_steps_total"] = (
        TOTAL_COARSE * FINE_STEPS_PER_COARSE[scenario]
    )
    assert np.all(np.isfinite(states))


def _bench_parareal(benchmark, scenario: str, slices: int, precision: str):
    simulation, start, model, reference, serial_wall = _setup(scenario, precision)
    operator = ModelCoarseOperator(model)
    config = _config(scenario, slices)
    driver = PararealDriver(simulation, operator, config)
    result = run_once(benchmark, lambda: driver.solve(start, execution=EXECUTION))

    ref = reference[:: TOTAL_COARSE // slices]
    error = float(np.linalg.norm(result.states - ref) / np.linalg.norm(ref))
    wall = float(benchmark.stats.stats.median)
    benchmark.extra_info["scenario"] = scenario
    benchmark.extra_info["precision"] = precision
    benchmark.extra_info["grid"] = GRID
    benchmark.extra_info["slices"] = slices
    # "sweeps", not "iterations": the conftest record already carries a
    # pytest-benchmark field of that name.
    benchmark.extra_info["sweeps"] = result.iterations
    benchmark.extra_info["converged"] = result.converged
    benchmark.extra_info["final_delta"] = result.deltas[-1]
    benchmark.extra_info["relative_error_vs_fine"] = round(error, 6)
    benchmark.extra_info["execution"] = EXECUTION
    benchmark.extra_info["fine_steps_total"] = slices * config.fine_steps_per_slice
    benchmark.extra_info["speedup_vs_serial_fine"] = round(serial_wall / wall, 3)

    # Core-count-independent claims first: these hold bitwise on any
    # machine, so a baseline diff can trust them even from a 1-core
    # container.
    if scenario == "allen-cahn":
        assert result.converged
        assert result.iterations <= 2, (
            f"allen-cahn s{slices}: {result.iterations} sweeps to tolerance "
            f"{config.tolerance} — the coarse surrogate degraded"
        )
        assert error < 0.05, f"converged iterate {error:.3f} off serial fine"
    else:
        assert result.iterations == EULER_SWEEPS
        assert not result.converged  # hyperbolic: documented non-contraction
    # Wall-clock claim, only meaningful with cores to fan the parallel
    # fine sweeps across (CI's ordering gate re-checks this cross-op).
    if available_cores() >= 4:
        assert wall <= serial_wall * 1.10, (
            f"{scenario} s{slices}: parareal {wall:.2f}s vs serial fine "
            f"{serial_wall:.2f}s on {available_cores()} cores"
        )


def test_serial_fine_euler_gaussian(benchmark):
    _bench_serial_fine(benchmark, "euler-gaussian")


def test_serial_fine_allen_cahn(benchmark):
    _bench_serial_fine(benchmark, "allen-cahn")


def test_parareal_euler_gaussian_s4(benchmark):
    _bench_parareal(benchmark, "euler-gaussian", 4, "float64")


def test_parareal_euler_gaussian_s8(benchmark):
    _bench_parareal(benchmark, "euler-gaussian", 8, "float64")


def test_parareal_allen_cahn_s4(benchmark):
    _bench_parareal(benchmark, "allen-cahn", 4, "float64")


def test_parareal_allen_cahn_s8(benchmark):
    _bench_parareal(benchmark, "allen-cahn", 8, "float64")


def test_parareal_euler_gaussian_s8_float32(benchmark):
    _bench_parareal(benchmark, "euler-gaussian", 8, "float32")


def test_parareal_allen_cahn_s8_float32(benchmark):
    _bench_parareal(benchmark, "allen-cahn", 8, "float32")

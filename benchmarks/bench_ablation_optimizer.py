"""Ablation — optimizers (Sec. II: "we found the ADAM optimizer to have
the best performance in our case").

Adam vs. plain SGD vs. SGD with the paper's Eq.-(3) momentum, equal
budget.  Shape claim: Adam reaches the lowest validation error.
"""

from conftest import run_once

from repro.experiments import DataConfig, run_optimizer_ablation


def test_optimizer_ablation(benchmark, record_report):
    result = run_once(
        benchmark,
        lambda: run_optimizer_ablation(
            data=DataConfig(grid_size=48, num_snapshots=40, num_train=32),
            epochs=10,
            num_ranks=4,
            seed=0,
        ),
    )
    record_report("ablation_optimizer", result.report())

    by_name = {r.name: r for r in result.rows}
    assert set(by_name) == {"adam", "sgd", "sgd+momentum"}
    # The paper's claim: Adam wins under an equal budget.
    assert by_name["adam"].value <= min(r.value for r in result.rows) + 1e-12

"""Rollout error accumulation (Sec. IV-B discussion).

The paper notes "the accuracy drops after one time step prediction"
because the CNN captures no temporal context: feeding predictions back
as inputs accumulates error.  This benchmark rolls the trained parallel
surrogate out 8 steps and verifies the error-growth shape, plus the
point-to-point message accounting of the halo exchange.
"""

from conftest import run_once

from repro.experiments import DataConfig, default_training_config, run_rollout_study


def test_rollout_error_accumulation(benchmark, record_report):
    num_steps = 8
    result = run_once(
        benchmark,
        lambda: run_rollout_study(
            data=DataConfig(grid_size=48, num_snapshots=60, num_train=48),
            training=default_training_config(epochs=25),
            num_ranks=4,
            num_steps=num_steps,
            seed=0,
        ),
    )
    record_report("rollout_error", result.report())

    assert result.steps == list(range(1, num_steps + 1))
    # Error accumulates: the late-rollout error exceeds the single-step
    # error (the paper's observed accuracy drop).
    assert result.errors[-1] > result.errors[0]
    # Halo exchange actually happened, fully point-to-point: in a 2x2
    # grid each of 4 ranks sends 2 messages per step.
    assert result.messages_sent == 8 * num_steps
    assert result.bytes_sent > 0

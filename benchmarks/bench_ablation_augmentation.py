"""Ablation — D4 symmetry augmentation (library extension).

The paper trains on a single simulated trajectory.  The linearized
Euler equations are D4-equivariant on the square domain, so the
training trajectory's 8-element symmetry orbit is free extra data; this
benchmark quantifies the accuracy effect under an equal epoch budget.
"""

from conftest import run_once

from repro.experiments import DataConfig, run_augmentation_ablation


def test_d4_augmentation_ablation(benchmark, record_report):
    result = run_once(
        benchmark,
        lambda: run_augmentation_ablation(
            data=DataConfig(grid_size=48, num_snapshots=30, num_train=24),
            epochs=6,
            num_ranks=4,
            seed=0,
        ),
    )
    record_report("ablation_augmentation", result.report())

    by_name = {r.name: r for r in result.rows}
    assert set(by_name) == {"baseline", "d4_augmented"}
    # The augmented run sees 8x the samples per epoch, so it must cost
    # more wall time...
    assert by_name["d4_augmented"].train_time > by_name["baseline"].train_time
    # ...and with 8x gradient steps it should not be (much) worse.
    assert by_name["d4_augmented"].value < 1.2 * by_name["baseline"].value + 0.05

"""Ablation — loss functions (Sec. II motivates MAPE over MSE).

All losses get the same budget; evaluation is loss-neutral (relative L2
of the physical fields).  MAPE trains on raw fields (per the paper),
the others on standardized channels.
"""

from conftest import run_once

from repro.experiments import DataConfig, run_loss_ablation


def test_loss_function_ablation(benchmark, record_report):
    result = run_once(
        benchmark,
        lambda: run_loss_ablation(
            data=DataConfig(grid_size=48, num_snapshots=40, num_train=32),
            losses=("mse", "mae", "mape", "huber"),
            epochs=10,
            num_ranks=4,
            seed=0,
        ),
    )
    record_report("ablation_loss", result.report())

    by_name = {r.name: r for r in result.rows}
    assert set(by_name) == {"mse", "mae", "mape", "huber"}
    for row in result.rows:
        assert row.value < 1.2, (row.name, row.value)

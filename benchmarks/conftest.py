"""Shared benchmark infrastructure.

Every benchmark regenerates one table/figure of the paper (or one
ablation from DESIGN.md) and writes the rendered report to
``benchmarks/results/<name>.txt`` so the EXPERIMENTS.md record can be
refreshed from a single ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_report():
    """Write a rendered experiment report to the results directory."""

    def writer(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return writer


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under the benchmark
    timer and return its result object."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

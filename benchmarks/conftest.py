"""Shared benchmark infrastructure.

Every benchmark regenerates one table/figure of the paper (or one
ablation from DESIGN.md) and writes the rendered report to
``benchmarks/results/<name>.txt`` so the EXPERIMENTS.md record can be
refreshed from a single ``pytest benchmarks/ --benchmark-only`` run.

In addition to the human-readable reports, every run emits one
machine-readable ``benchmarks/results/BENCH_<module>.json`` per
benchmark module (e.g. ``BENCH_kernels.json``): a list of
``{op, median_seconds, rounds, iterations, ...extra_info}`` records so
perf regressions can be diffed across commits without parsing text.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def available_cores() -> int:
    """Cores this process may actually run on.

    ``os.cpu_count()`` reports the host's cores, which inside a
    cgroup/affinity-limited container (CI runners, ``taskset``) is a
    lie — a 64-core host pinned to one core would enable a scaling
    assertion and then fail it.  ``os.sched_getaffinity(0)`` reports
    the schedulable set; it is Linux-only, so everywhere else we fall
    back to ``os.cpu_count()`` (macOS/Windows runners are not
    affinity-restricted in our CI).
    """
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1

#: Warmup iterations applied to every timed benchmark (see
#: ``pytest_configure``).  The first call pays one-off costs — BLAS
#: thread-pool spin-up, ``sliding_window_view`` code paths, page faults
#: on fresh buffers, workspace-arena fills — that pollute medians at
#: low round counts.
BENCH_WARMUP_ITERATIONS = 2


def pytest_configure(config):
    """Turn benchmark warmup on by default (user flags still win)."""
    user_args = " ".join(str(a) for a in config.invocation_params.args)
    if "--benchmark-warmup" not in user_args:
        config.option.benchmark_warmup = True
        config.option.benchmark_warmup_iterations = BENCH_WARMUP_ITERATIONS


@pytest.fixture
def record_report():
    """Write a rendered experiment report to the results directory."""

    def writer(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return writer


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under the benchmark
    timer and return its result object."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def pytest_sessionfinish(session, exitstatus):
    """Dump per-module JSON summaries of every benchmark that ran."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    by_module: dict[str, list[dict]] = {}
    for bench in bench_session.benchmarks:
        module = pathlib.Path(bench.fullname.split("::", 1)[0]).stem
        record = {
            "op": bench.name,
            "median_seconds": float(bench.stats.median),
            # stddev across rounds: a regression diff against a record
            # whose stddev rivals its median is noise, not a verdict.
            "stddev_seconds": float(bench.stats.stddev),
            "rounds": int(bench.stats.rounds),
            "iterations": int(bench.iterations),
            # warmup iterations applied before timing (0 = cold start)
            "warmup": int(getattr(bench, "options", {}).get("warmup") or 0),
            # schedulable cores (affinity-aware) — timings from a pinned
            # 1-core CI runner are not comparable to a desktop run.
            "cores": available_cores(),
        }
        for key in sorted(bench.extra_info):
            record.setdefault(key, bench.extra_info[key])
        by_module.setdefault(module, []).append(record)
    RESULTS_DIR.mkdir(exist_ok=True)
    for module, records in by_module.items():
        stem = module.removeprefix("bench_")
        path = RESULTS_DIR / f"BENCH_{stem}.json"
        path.write_text(json.dumps(records, indent=2, default=str) + "\n")

"""Execution-backend comparison: serial vs threads vs processes.

Trains the same 2-rank configuration under every execution backend and
measures the region wall-clock.  Two claims are checked:

1. **Equivalence** (always): the scheme is communication-free and every
   rank seeds from ``seed + rank``, so all backends must produce
   bit-identical losses — the result cannot depend on where ranks run.
2. **Scaling** (>= 4 physical cores only): with the GIL out of the way,
   the process backend's wall-clock must beat the thread backend's.
   Inside smaller containers the processes still work, they just have
   no spare cores to win with, so the speedup assertion is gated on
   :func:`available_cores`.
"""

import time

from conftest import available_cores, run_once

from repro.core import CNNConfig, ParallelTrainer, TrainingConfig
from repro.data import SnapshotDataset, synthetic_advection_snapshots

NUM_RANKS = 2
BACKENDS = ("serial", "threads", "processes")


def _setup():
    snaps = synthetic_advection_snapshots(grid_size=32, num_snapshots=16, seed=0)
    dataset = SnapshotDataset(snaps)
    cnn = CNNConfig(channels=(4, 6, 4), kernel_size=3)
    training = TrainingConfig(epochs=3, batch_size=4, lr=0.01, loss="mse", seed=0)
    return dataset, cnn, training


def _train(dataset, cnn, training, execution):
    trainer = ParallelTrainer(cnn, training, num_ranks=NUM_RANKS, seed=0)
    return trainer.train(dataset, execution=execution)


def test_backend_scaling(benchmark, record_report):
    dataset, cnn, training = _setup()
    # Warm-up outside the timed region (allocator growth, page faults).
    _train(dataset, cnn, training, "serial")

    def measure_all():
        results = {}
        for execution in BACKENDS:
            start = time.perf_counter()
            result = _train(dataset, cnn, training, execution)
            results[execution] = (result, time.perf_counter() - start)
        return results

    results = run_once(benchmark, measure_all)

    cores = available_cores()
    benchmark.extra_info["ranks"] = NUM_RANKS
    benchmark.extra_info["cores"] = cores
    lines = [
        f"execution backend comparison — {NUM_RANKS} ranks on {cores} core(s)",
        f"{'backend':<12} {'wall [s]':>10} {'final losses'}",
    ]
    for execution in BACKENDS:
        result, wall = results[execution]
        benchmark.extra_info[f"wall_{execution}_seconds"] = round(wall, 4)
        losses = ", ".join(f"{l:.6f}" for l in result.final_losses)
        lines.append(f"{execution:<12} {wall:>10.3f} [{losses}]")
    record_report("backend_scaling", "\n".join(lines))

    # Claim 1 — bit-identical losses on every backend, unconditionally.
    reference = results["serial"][0].final_losses
    for execution in ("threads", "processes"):
        assert results[execution][0].final_losses == reference, (
            f"{execution} backend diverged from serial"
        )

    # Claim 2 — real multi-core scaling, only measurable with cores to
    # spare: processes must beat the GIL-bound thread backend.
    if cores >= 4:
        wall_threads = results["threads"][1]
        wall_processes = results["processes"][1]
        assert wall_processes < wall_threads, (
            f"processes ({wall_processes:.3f}s) not faster than "
            f"threads ({wall_threads:.3f}s) on {cores} cores"
        )

"""Ablation — the four dimension-matching strategies of Sec. III.

The paper uses strategies 1-2 (zero padding, neighbour-data input
enlargement), rejects 3 (inner cropping, unusable for rollout) and
defers 4 (transposed convolution).  This benchmark trains all of them
(plus the all-valid NEIGHBOR_ALL extreme) under an equal budget and
compares single-step validation error.
"""

from conftest import run_once

from repro.core import PaddingStrategy
from repro.experiments import DataConfig, default_training_config, run_padding_ablation


def test_padding_strategy_ablation(benchmark, record_report):
    result = run_once(
        benchmark,
        lambda: run_padding_ablation(
            data=DataConfig(grid_size=64, num_snapshots=40, num_train=32),
            training=default_training_config(epochs=10),
            num_ranks=4,
            strategies=tuple(PaddingStrategy),
            seed=0,
        ),
    )
    record_report("ablation_padding", result.report())

    by_name = {r.name: r for r in result.rows}
    assert set(by_name) == {s.value for s in PaddingStrategy}
    # Every variant must have learned something (error < 1 = better than
    # predicting zero fields).
    for row in result.rows:
        assert row.value < 1.0, (row.name, row.value)
    # The neighbour-data strategies see true interface data, so they
    # should not be substantially worse than plain zero padding.
    assert by_name["neighbor_first"].value < 1.5 * by_name["zero"].value + 0.05

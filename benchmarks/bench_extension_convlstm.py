"""Extension — recurrent (ConvLSTM) surrogate vs. the paper's pure CNN.

Sec. IV-B proposes recurrent/LSTM layers fed with time-series data to
fix the rollout error accumulation.  This benchmark trains both models
on the same trajectory and compares their multi-step rollout error
curves on the full (undecomposed) domain.

Assertions are deliberately soft on "who wins" — at this training
budget either model can lead — but both must learn, and the report
records the comparative curve for EXPERIMENTS.md.
"""

import numpy as np
from conftest import run_once

from repro.core import (
    CNNConfig,
    PaddingStrategy,
    RecurrentSurrogate,
    SequentialPredictor,
    SubdomainCNN,
    TrainingConfig,
    WindowDataset,
    build_rank_dataset,
    relative_l2,
    train_network,
    train_recurrent,
)
from repro.data import SnapshotDataset, StandardNormalizer, generate_paper_dataset
from repro.domain import BlockDecomposition
from repro.experiments import format_table

WINDOW = 3
STEPS = 6


def run_comparison():
    produced = generate_paper_dataset(grid_size=32, num_snapshots=70, num_train=56)
    normalizer = StandardNormalizer().fit(produced.train.snapshots)
    train = SnapshotDataset(normalizer.transform(produced.train.snapshots))
    validation = SnapshotDataset(normalizer.transform(produced.validation.snapshots))

    config = TrainingConfig(epochs=20, batch_size=8, lr=0.002, loss="mse", seed=0)

    # Paper CNN on the full domain (P=1 so the comparison isolates the
    # temporal-context question from the decomposition question).
    decomp = BlockDecomposition(train.field_shape, (1, 1))
    cnn = SubdomainCNN(
        CNNConfig(strategy=PaddingStrategy.ZERO), rng=np.random.default_rng(0)
    )
    cnn_data = build_rank_dataset(train, decomp, 0, halo=0)
    train_network(cnn, cnn_data, config)

    lstm = RecurrentSurrogate(
        channels=4, hidden_channels=12, kernel_size=5, rng=np.random.default_rng(0)
    )
    lstm_data = WindowDataset.from_dataset(train, WINDOW)
    train_recurrent(lstm, lstm_data, config)

    # Rollouts from the validation head.
    cnn_rollout = SequentialPredictor(cnn).rollout(
        validation.snapshots[WINDOW - 1], STEPS
    )
    lstm_rollout = lstm.rollout(validation.snapshots[:WINDOW], STEPS)

    rows = []
    cnn_errors, lstm_errors = [], []
    for step in range(1, STEPS + 1):
        target = validation.snapshots[WINDOW - 1 + step]
        cnn_err = relative_l2(cnn_rollout.trajectory[step], target)
        lstm_err = relative_l2(lstm_rollout[step - 1], target)
        cnn_errors.append(cnn_err)
        lstm_errors.append(lstm_err)
        rows.append((step, cnn_err, lstm_err))
    report = format_table(
        ["rollout step", "CNN rel. L2", "ConvLSTM rel. L2"],
        rows,
        title=(
            "Extension — pure CNN (paper) vs. ConvLSTM (paper future work), "
            f"window={WINDOW}"
        ),
    )
    return report, cnn_errors, lstm_errors


def test_convlstm_extension(benchmark, record_report):
    report, cnn_errors, lstm_errors = run_once(benchmark, run_comparison)
    record_report("extension_convlstm", report)

    # Both models must have learned the one-step map.
    assert cnn_errors[0] < 1.0
    assert lstm_errors[0] < 1.0
    # Both curves are finite throughout the rollout.
    assert all(np.isfinite(e) for e in cnn_errors + lstm_errors)

"""Kernel-level microbenchmarks for the performance-critical pieces:
the im2col convolution, the halo exchange, and one solver step on the
paper's full 256 x 256 grid.

These are not paper artifacts; they document where the training time of
Figs. 3-4 is spent and guard against performance regressions.  Each
test tags its ``extra_info`` with the problem size so the emitted
``BENCH_kernels.json`` records are self-describing.
"""

import time

import numpy as np

from repro import mpi
from repro.core import InferencePlan, build_paper_cnn
from repro.domain import BlockDecomposition, HaloExchanger
from repro.solver import LinearizedEuler, Simulation, UniformGrid2D, paper_initial_condition
from repro.tensor import (
    Tensor,
    conv2d,
    im2col,
    leaky_relu,
    no_grad,
    precision,
    workspace_disabled,
)

#: Rounds for the InferencePlan step benchmarks.  One step is ~10² ms,
#: so pytest-benchmark's calibrated default lands at rounds=5 — too few
#: for a stable median on a shared host.  Fixed pedantic rounds keep
#: the float32-vs-float64 ordering gate out of scheduler-noise
#: territory and make the recorded stddev meaningful.
PLAN_STEP_ROUNDS = 12


def test_im2col_256(benchmark):
    benchmark.extra_info["grid"] = 256
    benchmark.extra_info["channels"] = 4
    x = np.random.default_rng(0).standard_normal((1, 4, 256, 256))
    cols, dims = benchmark(lambda: im2col(x, (5, 5), (1, 1), (2, 2)))
    assert dims == (256, 256)


def test_conv2d_forward_256(benchmark):
    benchmark.extra_info["grid"] = 256
    benchmark.extra_info["kernel"] = 5
    benchmark.extra_info["kernel_path"] = "blocked"
    benchmark.extra_info["precision"] = "float64"
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((1, 4, 256, 256)))
    w = Tensor(rng.standard_normal((6, 4, 5, 5)))

    def forward():
        with no_grad():
            return conv2d(x, w, padding=2)

    out = benchmark(forward)
    assert out.shape == (1, 6, 256, 256)


def test_conv2d_forward_fused_256(benchmark):
    """The fused/workspace path of the same 256x256 convolution: bias +
    leaky ReLU folded into the GEMM epilogue, scratch from the
    per-thread workspace arena (the no-grad fast path)."""
    benchmark.extra_info["grid"] = 256
    benchmark.extra_info["kernel"] = 5
    benchmark.extra_info["variant"] = "fused+workspace"
    benchmark.extra_info["kernel_path"] = "blocked"
    benchmark.extra_info["precision"] = "float64"
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((1, 4, 256, 256)))
    w = Tensor(rng.standard_normal((6, 4, 5, 5)))
    b = Tensor(rng.standard_normal(6))

    def forward():
        with no_grad():
            return conv2d(x, w, b, padding=2, activation="leaky_relu")

    out = benchmark(forward)
    assert out.shape == (1, 6, 256, 256)


def test_conv2d_forward_plain_epilogue_256(benchmark):
    """Composed-ops path doing the *identical work* as the fused
    variant — conv + bias by the op, then a separate ``leaky_relu``
    op — with the workspace arena ON.  This is the honest B side of
    the ``fused <= plain`` ordering gate: both sides add the bias and
    apply the activation, so the only difference is fusion (the bare
    ``test_conv2d_forward_256`` does strictly less work and would make
    that comparison meaningless)."""
    benchmark.extra_info["grid"] = 256
    benchmark.extra_info["kernel"] = 5
    benchmark.extra_info["variant"] = "plain+workspace"
    benchmark.extra_info["kernel_path"] = "blocked"
    benchmark.extra_info["precision"] = "float64"
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((1, 4, 256, 256)))
    w = Tensor(rng.standard_normal((6, 4, 5, 5)))
    b = Tensor(rng.standard_normal(6))

    def forward():
        with no_grad():
            return leaky_relu(conv2d(x, w, b, padding=2), 0.01)

    out = benchmark(forward)
    assert out.shape == (1, 6, 256, 256)


def test_conv2d_forward_naive_epilogue_256(benchmark):
    """The allocate-per-call baseline for the fused variant above:
    conv, then bias is added by the op, then a separate leaky ReLU —
    with the workspace arena disabled."""
    benchmark.extra_info["grid"] = 256
    benchmark.extra_info["kernel"] = 5
    benchmark.extra_info["variant"] = "naive"
    benchmark.extra_info["kernel_path"] = "monolithic"
    benchmark.extra_info["precision"] = "float64"
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((1, 4, 256, 256)))
    w = Tensor(rng.standard_normal((6, 4, 5, 5)))
    b = Tensor(rng.standard_normal(6))

    def forward():
        with no_grad(), workspace_disabled():
            return leaky_relu(conv2d(x, w, b, padding=2), 0.01)

    out = benchmark(forward)
    assert out.shape == (1, 6, 256, 256)


def test_fused_conv_speedup_256():
    """Regression gate for the workspace/fusion layer: the fused path
    must stay >= 1.3x faster than the naive path at the paper's
    256x256 / 4-channel / 5x5 configuration (best-of timing to shed
    scheduler noise)."""
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((1, 4, 256, 256)))
    w = Tensor(rng.standard_normal((6, 4, 5, 5)))
    b = Tensor(rng.standard_normal(6))

    def naive():
        with no_grad(), workspace_disabled():
            leaky_relu(conv2d(x, w, b, padding=2), 0.01)

    def fused():
        with no_grad():
            conv2d(x, w, b, padding=2, activation="leaky_relu")

    def best_of(fn, repeats=7):
        fn()  # warmup: page faults, BLAS spin-up, arena fill
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    naive_s = best_of(naive)
    fused_s = best_of(fused)
    speedup = naive_s / fused_s
    print(f"\nfused conv speedup @256: {speedup:.2f}x "
          f"(naive {naive_s * 1e3:.2f} ms, fused {fused_s * 1e3:.2f} ms)")
    assert speedup >= 1.3, (
        f"fused/workspace conv forward only {speedup:.2f}x faster than "
        f"naive (need >= 1.3x)"
    )


def test_conv2d_forward_float32_256(benchmark):
    """The bare 256x256 convolution under the ``float32`` compute
    mode — half the bytes through every stage of the blocked kernel,
    so this is the current run's A side of the ``float32 <= float64``
    ordering gate."""
    benchmark.extra_info["grid"] = 256
    benchmark.extra_info["kernel"] = 5
    benchmark.extra_info["kernel_path"] = "blocked"
    benchmark.extra_info["precision"] = "float32"
    with precision("float32"):
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((1, 4, 256, 256)))
        w = Tensor(rng.standard_normal((6, 4, 5, 5)))
        assert x.dtype == np.float32  # policy cast at the Tensor boundary

        def forward():
            with no_grad():
                return conv2d(x, w, padding=2)

        out = benchmark(forward)
    assert out.shape == (1, 6, 256, 256)
    assert out.dtype == np.float32


def test_conv2d_forward_fused_float32_256(benchmark):
    """The fused/workspace path at ``float32``: the arena hands back
    float32 slots (dtype is part of the slot key), so epilogue scratch
    shrinks along with the GEMM."""
    benchmark.extra_info["grid"] = 256
    benchmark.extra_info["kernel"] = 5
    benchmark.extra_info["variant"] = "fused+workspace"
    benchmark.extra_info["kernel_path"] = "blocked"
    benchmark.extra_info["precision"] = "float32"
    with precision("float32"):
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((1, 4, 256, 256)))
        w = Tensor(rng.standard_normal((6, 4, 5, 5)))
        b = Tensor(rng.standard_normal(6))

        def forward():
            with no_grad():
                return conv2d(x, w, b, padding=2, activation="leaky_relu")

        out = benchmark(forward)
    assert out.shape == (1, 6, 256, 256)
    assert out.dtype == np.float32


def test_inference_plan_step_256(benchmark):
    """One rollout step of the compiled InferencePlan on the paper's
    full network at 256x256 — allocation-free after the warmup run."""
    benchmark.extra_info["grid"] = 256
    benchmark.extra_info["variant"] = "plan"
    benchmark.extra_info["kernel_path"] = "blocked"
    benchmark.extra_info["precision"] = "float64"
    rng = np.random.default_rng(0)
    model = build_paper_cnn("zero", rng=np.random.default_rng(0))
    plan = InferencePlan(model)
    x = rng.standard_normal((1, 4, 256, 256))
    plan.run(x)  # warm the arena so the timed runs are steady-state
    created = plan.workspace.stats.buffers_created

    out = benchmark.pedantic(
        lambda: plan.run(x), rounds=PLAN_STEP_ROUNDS, iterations=1, warmup_rounds=2
    )
    assert out.shape == (1, 4, 256, 256)
    assert plan.workspace.stats.buffers_created == created  # zero-alloc


def test_inference_plan_step_float32_256(benchmark):
    """The same compiled rollout step under the ``float32`` compute
    mode: parameters, arena slots, and the step output all run at
    float32 (the plan resolves its dtype from the parameters at build
    time), still allocation-free after warmup."""
    benchmark.extra_info["grid"] = 256
    benchmark.extra_info["variant"] = "plan"
    benchmark.extra_info["kernel_path"] = "blocked"
    benchmark.extra_info["precision"] = "float32"
    with precision("float32"):
        rng = np.random.default_rng(0)
        model = build_paper_cnn("zero", rng=np.random.default_rng(0))
        plan = InferencePlan(model)
        x = rng.standard_normal((1, 4, 256, 256))
        plan.run(x)  # warm the arena so the timed runs are steady-state
        created = plan.workspace.stats.buffers_created

        out = benchmark.pedantic(
            lambda: plan.run(x), rounds=PLAN_STEP_ROUNDS, iterations=1, warmup_rounds=2
        )
    assert out.shape == (1, 4, 256, 256)
    assert out.dtype == np.float32
    assert plan.workspace.stats.buffers_created == created  # zero-alloc


def test_conv2d_backward_128(benchmark):
    benchmark.extra_info["grid"] = 128
    benchmark.extra_info["kernel"] = 5
    rng = np.random.default_rng(0)
    x_data = rng.standard_normal((1, 4, 128, 128))
    w_data = rng.standard_normal((6, 4, 5, 5))

    def step():
        x = Tensor(x_data, requires_grad=True)
        w = Tensor(w_data, requires_grad=True)
        conv2d(x, w, padding=2).sum().backward()
        return w.grad

    grad = benchmark(step)
    assert grad.shape == (6, 4, 5, 5)


def test_solver_step_256(benchmark):
    """One RK4 step of the linearized Euler solver on the paper grid."""
    benchmark.extra_info["grid"] = 256
    grid = UniformGrid2D.square(256)
    sim = Simulation(grid, LinearizedEuler(), boundary="outflow")
    state = paper_initial_condition(grid)

    result = benchmark(lambda: sim.advance(state, 1))
    assert result.is_finite()


def test_halo_exchange_round(benchmark):
    """One full halo exchange across a 2x2 rank grid (4 channels,
    64x64 blocks, halo 2 — the paper's inference communication)."""
    benchmark.extra_info["grid"] = 128
    benchmark.extra_info["ranks"] = 4
    benchmark.extra_info["halo"] = 2
    decomp = BlockDecomposition((128, 128), (2, 2))
    field = np.random.default_rng(0).standard_normal((4, 128, 128))

    def exchange_round():
        def program(comm):
            local = decomp.extract(field, comm.rank)
            exchanger = HaloExchanger(comm, decomp, halo=2)
            return exchanger.exchange(local).shape

        return mpi.run_parallel(program, 4)

    shapes = benchmark(exchange_round)
    assert all(s == (4, 68, 68) for s in shapes)


def test_allreduce_weight_volume(benchmark):
    """One allreduce of a Table-I-sized parameter set across 4 ranks
    (the per-epoch cost of the weight-averaging baseline)."""
    benchmark.extra_info["ranks"] = 4
    benchmark.extra_info["params"] = 6032
    payload = np.random.default_rng(0).standard_normal(6032)  # Table-I params

    def round_trip():
        def program(comm):
            return comm.allreduce(payload, op=mpi.SUM)

        return mpi.run_parallel(program, 4)

    results = benchmark(round_trip)
    assert np.allclose(results[0], payload * 4)


#: Rounds / iterations for the metrics-overhead rollout pair.  The
#: <2% ordering gate compares two independently-timed medians, so each
#: round averages several rollouts (mean of ``ITERATIONS``) and the
#: median is taken over many rounds — squeezing scheduler noise well
#: below the 1.02 slack the CI gate allows.
METRICS_ROLLOUT_ROUNDS = 25
METRICS_ROLLOUT_ITERATIONS = 4


def _metrics_rollout_pair_setup():
    from repro.core import ParallelPredictor, build_paper_cnn

    rng = np.random.default_rng(0)
    models = [
        build_paper_cnn("zero", rng=np.random.default_rng(r)) for r in range(2)
    ]
    predictor = ParallelPredictor(models, BlockDecomposition((96, 96), (1, 2)))
    initial = rng.standard_normal((4, 96, 96))
    return predictor, initial


def test_rollout_step_metrics_off_96(benchmark):
    """The B side of the metrics-overhead ordering gate: a 3-step
    two-rank rollout with the metrics registry disabled (every metered
    site pays only its module-flag check)."""
    from repro.obs import metrics

    benchmark.extra_info["grid"] = 96
    benchmark.extra_info["ranks"] = 2
    benchmark.extra_info["steps"] = 3
    benchmark.extra_info["metrics"] = "off"
    predictor, initial = _metrics_rollout_pair_setup()
    assert not metrics.enabled()
    predictor.rollout(initial, num_steps=1)  # warm arenas before timing

    out = benchmark.pedantic(
        lambda: predictor.rollout(initial, num_steps=3),
        rounds=METRICS_ROLLOUT_ROUNDS,
        iterations=METRICS_ROLLOUT_ITERATIONS,
        warmup_rounds=2,
    )
    assert out.trajectory.shape == (4, 4, 96, 96)


def test_rollout_step_metrics_on_96(benchmark):
    """The A side of the gate: the identical rollout with the metrics
    registry collecting (step histograms, byte counters, heartbeats).
    CI asserts A <= B * 1.02 — metrics-enabled overhead under 2%."""
    from repro.obs import metrics

    benchmark.extra_info["grid"] = 96
    benchmark.extra_info["ranks"] = 2
    benchmark.extra_info["steps"] = 3
    benchmark.extra_info["metrics"] = "on"
    predictor, initial = _metrics_rollout_pair_setup()
    predictor.rollout(initial, num_steps=1)  # warm arenas before timing

    metrics.reset()
    with metrics.collecting():
        out = benchmark.pedantic(
            lambda: predictor.rollout(initial, num_steps=3),
            rounds=METRICS_ROLLOUT_ROUNDS,
            iterations=METRICS_ROLLOUT_ITERATIONS,
            warmup_rounds=2,
        )
    assert out.trajectory.shape == (4, 4, 96, 96)
    assert metrics.histogram("rollout.step_seconds").count(0) > 0
    metrics.reset()

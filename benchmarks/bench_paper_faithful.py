"""Paper-faithful recipe check: raw fields + MAPE (Eq. 7) + Adam η=0.01.

The default experiment pipeline standardizes channels and trains with
MSE (EXPERIMENTS.md explains why).  This benchmark runs the *literal*
paper configuration — un-normalized bar-unit fields, MAPE loss with the
ε-clamped denominator, Adam at the quoted η = 0.01 — and verifies that
it does train: per-rank losses drop by a large factor and the one-step
prediction is far better than predicting zero.
"""

import numpy as np
from conftest import run_once

from repro.core import ParallelPredictor, ParallelTrainer, per_channel, relative_l2
from repro.experiments import (
    DataConfig,
    default_cnn_config,
    paper_faithful_training_config,
    prepare_data,
)
from repro.experiments.reporting import format_table


def run_paper_recipe():
    experiment = prepare_data(
        DataConfig(grid_size=48, num_snapshots=80, num_train=64, normalize=False)
    )
    trainer = ParallelTrainer(
        default_cnn_config(),
        paper_faithful_training_config(epochs=25),
        num_ranks=4,
        seed=0,
    )
    result = trainer.train(experiment.train, execution="serial")
    predictor = ParallelPredictor(result.build_models(), result.decomposition)
    model_input, target = experiment.validation[0]
    prediction = predictor.rollout(model_input, 1).trajectory[1]
    errors = per_channel(relative_l2, prediction, target)
    loss_drop = [
        r.history.epoch_losses[0] / r.history.epoch_losses[-1]
        for r in result.rank_results
    ]
    report = format_table(
        ["channel", "rel. L2 (1 step)"],
        list(errors.items()),
        title=(
            "Paper-faithful recipe (raw fields, MAPE, Adam eta=0.01): "
            f"per-rank MAPE dropped {min(loss_drop):.1f}x-{max(loss_drop):.1f}x "
            "over 25 epochs"
        ),
    )
    return report, errors, loss_drop


def test_paper_faithful_recipe_trains(benchmark, record_report):
    report, errors, loss_drop = run_once(benchmark, run_paper_recipe)
    record_report("paper_faithful_mape", report)

    # The MAPE training loss must have dropped on every rank (the first
    # recorded epoch already includes early optimizer progress, so the
    # visible drop understates the total).
    assert min(loss_drop) > 1.2, loss_drop
    assert max(loss_drop) > 3.0, loss_drop
    # One-step prediction is clearly better than the zero field
    # (rel L2 = 1) on average — raw-MAPE converges slowly, per
    # EXPERIMENTS.md, but it does converge.
    assert np.mean(list(errors.values())) < 0.95, errors

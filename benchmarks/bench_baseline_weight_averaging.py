"""Baseline comparison — the paper's scheme vs. Viviani-style weight
averaging vs. sequential training (Sec. I discussion).

Shape claims measured here:

- the subdomain scheme trains much faster than sequential (it is the
  Fig. 4 speedup) while communicating zero bytes,
- weight averaging pays allreduce traffic every epoch (the "potential
  performance bottleneck" the paper criticizes).
"""

from conftest import run_once

from repro.experiments import DataConfig, run_scheme_comparison


def test_scheme_comparison(benchmark, record_report):
    num_ranks = 4
    result = run_once(
        benchmark,
        lambda: run_scheme_comparison(
            data=DataConfig(grid_size=48, num_snapshots=40, num_train=32),
            epochs=8,
            num_ranks=num_ranks,
            seed=0,
        ),
    )
    record_report("baseline_weight_averaging", result.report())

    seq = next(r for r in result.rows if "sequential" in r.scheme)
    sub = next(r for r in result.rows if "subdomain" in r.scheme)
    wa = next(r for r in result.rows if "averaging" in r.scheme)

    # Communication profile.
    assert sub.bytes_communicated == 0
    assert wa.bytes_communicated > 0
    # Speed: the subdomain scheme is at least 2x faster than sequential
    # at P=4 (measured max-rank time vs. full-domain time).
    assert sub.train_time < seq.train_time / 2.0
    # Everyone learned something.
    for row in result.rows:
        assert row.val_error < 1.0, (row.scheme, row.val_error)

"""Fig. 3 — single-step prediction vs. target fields.

Scaled-down reproduction (48² grid instead of 256², 100 training
snapshots instead of 1000, identical physics and architecture).  The
shape claims verified here are the paper's:

- the prediction agrees well with the target overall,
- density and pressure agree best; velocities show the (small)
  discrepancies the paper attributes to interior-layer padding.
"""

from conftest import run_once

from repro.experiments import DataConfig, Fig3Config, default_training_config, run_fig3


def fig3_config() -> Fig3Config:
    return Fig3Config(
        data=DataConfig(grid_size=48, num_snapshots=120, num_train=100),
        training=default_training_config(epochs=40),
        num_ranks=4,
        sample_index=0,
        seed=0,
    )


def test_fig3_prediction_accuracy(benchmark, record_report):
    result = run_once(benchmark, lambda: run_fig3(fig3_config()))
    record_report("fig3_accuracy", result.report(heatmaps=True))

    errors = result.per_channel_relative_l2
    # Overall agreement: every channel well below "uncorrelated" (1.0).
    assert all(e < 0.6 for e in errors.values()), errors
    # Pressure/density agree best (paper: "especially for density and
    # pressure"); velocities are allowed to be a few times worse.
    assert errors["p"] < 0.35
    assert errors["rho"] < 0.35
    assert max(errors["u"], errors["v"]) < 4.0 * max(errors["p"], errors["rho"]) + 0.3

"""Table I — architecture verification and forward/backward cost.

Regenerates the architecture table from the constructed network and
benchmarks the cost of one forward and one training step of the
Table-I CNN on a paper-sized 64-rank subdomain block (32 x 32).
"""

import numpy as np
import pytest

from repro.core import CNNConfig, SubdomainCNN, build_paper_cnn
from repro.experiments import render_table1
from repro.nn import Conv2d, MAPELoss
from repro.tensor import Tensor


def test_table1_report(benchmark, record_report):
    text = benchmark.pedantic(render_table1, rounds=3, iterations=1)
    record_report("table1_architecture", text)
    assert "Table I" in text


def test_table1_channel_contract():
    model = build_paper_cnn(rng=np.random.default_rng(0))
    convs = [m for m in model.layers if isinstance(m, Conv2d)]
    assert [(c.in_channels, c.out_channels) for c in convs] == [
        (4, 6),
        (6, 16),
        (16, 6),
        (6, 4),
    ]


def test_forward_pass_cost(benchmark):
    """Inference cost of one subdomain network on a 32x32 block."""
    model = build_paper_cnn(rng=np.random.default_rng(0))
    halo = model.input_halo
    x = Tensor(np.random.default_rng(1).standard_normal((1, 4, 32 + 2 * halo, 32 + 2 * halo)))

    from repro.tensor import no_grad

    def forward():
        with no_grad():
            return model(x)

    out = benchmark(forward)
    assert out.shape == (1, 4, 32, 32)


def test_training_step_cost(benchmark):
    """One forward+backward+loss on a batch of 16 blocks (the unit of
    work whose repetition the Fig. 4 scaling measures)."""
    rng = np.random.default_rng(0)
    model = build_paper_cnn(rng=rng)
    halo = model.input_halo
    x = Tensor(rng.standard_normal((16, 4, 32 + 2 * halo, 32 + 2 * halo)))
    y = Tensor(rng.standard_normal((16, 4, 32, 32)))
    loss_fn = MAPELoss(epsilon=1e-2)

    def step():
        model.zero_grad()
        loss = loss_fn(model(x), y)
        loss.backward()
        return loss

    loss = benchmark(step)
    assert np.isfinite(loss.item())

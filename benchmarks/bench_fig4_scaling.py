"""Fig. 4 — strong scaling of training time, 1 to 64 ranks.

Measures, for each P in the paper's range, the wall time of the
communication-free training phase (= max over ranks of the per-rank
training time; see DESIGN.md for why this measurement is faithful on a
single-core container).  Shape claim: training time decreases
monotonically and close to linearly with P.
"""

from conftest import run_once

from repro.experiments import (
    PAPER_RANK_COUNTS,
    DataConfig,
    Fig4Config,
    default_training_config,
    run_fig4,
)


def fig4_config() -> Fig4Config:
    return Fig4Config(
        data=DataConfig(grid_size=64, num_snapshots=25, num_train=20),
        training=default_training_config(epochs=2),
        rank_counts=PAPER_RANK_COUNTS,  # 1, 2, 4, 8, 16, 32, 64
        repeats=2,
        seed=0,
    )


def test_fig4_strong_scaling(benchmark, record_report):
    from repro.experiments import analyse_fig4

    result = run_once(benchmark, lambda: run_fig4(fig4_config()))
    analysis = analyse_fig4(result, extrapolate_to=(128, 256, 1024))
    record_report("fig4_scaling", result.report() + "\n\n" + analysis)

    times = result.times
    ranks = result.rank_counts
    # Monotone decrease of training time with core count (Fig. 4).
    for earlier, later in zip(times, times[1:]):
        assert later < earlier
    # Near-perfect strong scaling: at least 60% parallel efficiency at
    # every P (the measured efficiency is typically >= 1 due to cache
    # effects on the smaller per-rank blocks; see EXPERIMENTS.md).
    for row in result.rows:
        assert row.efficiency > 0.6, (row.num_ranks, row.efficiency)
    # Total speedup at 64 ranks must be substantial.
    assert times[0] / times[-1] > 16.0

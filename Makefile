PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint check test all

lint:
	bash scripts/check.sh

check:
	$(PYTHON) -m repro.cli check --sanitize

test:
	$(PYTHON) -m pytest -x -q

all: lint check test

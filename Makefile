PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint analyze check test all

lint:
	bash scripts/check.sh

analyze:
	$(PYTHON) -m repro.cli analyze src/repro

check:
	$(PYTHON) -m repro.cli check --sanitize

test:
	$(PYTHON) -m pytest -x -q

all: lint analyze check test
